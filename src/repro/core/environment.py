"""Location environments: resolving annotations into lattices and
composite locations (Sections 2.2, 3.3, 3.6).

:class:`LocationWorld` holds, for a whole program:

* one **field lattice** per class (from the class ``@LATTICE``);
* one **method environment** per method, containing the method lattice
  (from the method ``@LATTICE`` or the class ``@METHODDEFAULT``), the
  locations of ``this`` (``@THISLOC``), parameters (``@LOC``), the return
  value (``@RETURNLOC``), the program counter (``@PCLOC``), static fields
  (``@GLOBALLOC``), and all annotated local variables.

Every method receives its *own* lattice instance (copied from the class
default when needed) so that delta locations inserted while checking one
method never leak into another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core import annotations as anns
from repro.core.composite import (
    BOT_LOC,
    CompositeLocation,
    Loc,
    TOP_LOC,
)
from repro.core.errors import Check, DiagnosticSink, Severity
from repro.core.lattice import Lattice, LatticeError
from repro.lang import ast
from repro.lang.symtab import ProgramInfo

TRUSTED = "TRUSTED"


def _copy_lattice(source: Lattice, name: str) -> Lattice:
    copy = Lattice(name=name)
    for low, high in source.direct_edges():
        copy.add_ordering(low, high)
    for element in source.user_elements():
        copy.add_element(element)
    for element in source.shared_elements:
        copy.add_shared(element)
    return copy


@dataclass
class MethodLocEnv:
    """Resolved location information for one method."""

    class_name: str
    method: ast.MethodDecl
    lattice: Lattice
    this_loc: Optional[str] = None
    pc_spec: Optional[anns.LocSpec] = None
    return_spec: Optional[anns.LocSpec] = None
    global_loc: Optional[str] = None
    param_specs: dict[str, anns.LocSpec] = field(default_factory=dict)
    var_specs: dict[str, anns.LocSpec] = field(default_factory=dict)
    delegated: frozenset[str] = frozenset()
    trusted: bool = False

    @property
    def name(self) -> str:
        return f"{self.class_name}.{self.method.name}"


class LocationWorld:
    """All resolved location environments for a program."""

    def __init__(self, info: ProgramInfo, sink: DiagnosticSink) -> None:
        self.info = info
        self.sink = sink
        self.field_lattices: dict[str, Lattice] = {}
        self.field_locs: dict[tuple[str, str], str] = {}
        self.method_envs: dict[tuple[str, str], MethodLocEnv] = {}
        self.trusted_classes: set[str] = set()
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        for cls in self.info.program.classes:
            self._build_class(cls)
        self._merge_inherited_lattices()
        for cls in self.info.program.classes:
            for method in cls.methods:
                self._build_method(cls, method)

    def _merge_inherited_lattices(self) -> None:
        """Fold each superclass's field lattice into its subclasses.

        Section 3.5 requires every location of the parent to appear in the
        subclass hierarchy with the same orderings; merging realizes the
        inherited part, and :mod:`repro.core.inheritance` checks that the
        subclass's own declarations do not contradict it.
        """

        merged: set[str] = set()

        def merge(name: str) -> None:
            if name in merged:
                return
            merged.add(name)
            parent = self.info.classes[name].superclass
            if parent is None:
                return
            merge(parent)
            child_lattice = self.field_lattices[name]
            parent_lattice = self.field_lattices[parent]
            for low, high in parent_lattice.direct_edges():
                child_lattice.add_ordering(low, high)
            for element in parent_lattice.user_elements():
                child_lattice.add_element(element)
            for element in parent_lattice.shared_elements:
                child_lattice.add_shared(element)
            try:
                child_lattice.validate()
            except LatticeError as exc:
                self.sink.report(
                    Check.LATTICE,
                    f"class {name!r} contradicts the ordering it inherits "
                    f"from {parent!r}: {exc}",
                    context=name,
                )
                # Replace with the parent's (consistent) lattice so later
                # queries do not cascade into crashes.
                self.field_lattices[name] = _copy_lattice(
                    parent_lattice, f"class {name}"
                )

        for cls in self.info.program.classes:
            merge(cls.name)

    def _parse_lattice_payload(
        self, payload: object, context: str, node: ast.Node
    ) -> Optional[anns.LatticeDecl]:
        if not isinstance(payload, str):
            self.sink.report(
                Check.ANNOTATION,
                "@LATTICE requires a string payload",
                node=node,
                context=context,
            )
            return None
        try:
            return anns.parse_lattice_decl(payload)
        except anns.AnnotationSyntaxError as exc:
            self.sink.report(Check.ANNOTATION, str(exc), node=node, context=context)
            return None

    def _build_class(self, cls: ast.ClassDecl) -> None:
        lattice = Lattice(name=f"class {cls.name}")
        decl_ann = ast.annotation_named(cls.annotations, "LATTICE")
        if decl_ann is not None:
            decl = self._parse_lattice_payload(decl_ann.value, cls.name, decl_ann)
            if decl is not None:
                for entry in decl.orderings:
                    lattice.add_ordering(entry.lower, entry.higher)
                for shared in decl.shared:
                    lattice.add_shared(shared)
                for name in decl.standalone:
                    lattice.add_element(name)
        if ast.annotation_named(cls.annotations, TRUSTED) is not None:
            self.trusted_classes.add(cls.name)
        self.field_lattices[cls.name] = lattice

        for fld in cls.fields:
            loc_ann = ast.annotation_named(fld.annotations, "LOC")
            if loc_ann is None:
                continue
            try:
                element = anns.parse_single_loc(str(loc_ann.value))
            except anns.AnnotationSyntaxError as exc:
                self.sink.report(
                    Check.ANNOTATION, str(exc), node=fld, context=cls.name
                )
                continue
            if element not in lattice:
                self.sink.report(
                    Check.ANNOTATION,
                    f"field {fld.name!r} uses location {element!r} that is not "
                    f"declared in the @LATTICE of class {cls.name!r}; "
                    "declaring it as an unordered location",
                    node=fld,
                    context=cls.name,
                    severity=Severity.WARNING,
                )
                lattice.add_element(element)
            self.field_locs[(cls.name, fld.name)] = element

        try:
            lattice.validate()
        except Exception as exc:  # LatticeError
            self.sink.report(Check.LATTICE, str(exc), node=cls, context=cls.name)

    def _build_method(self, cls: ast.ClassDecl, method: ast.MethodDecl) -> None:
        context = f"{cls.name}.{method.name}"
        lattice_ann = ast.annotation_named(method.annotations, "LATTICE")
        default_ann = ast.annotation_named(cls.annotations, "METHODDEFAULT")
        lattice = Lattice(name=f"method {context}")
        decl: Optional[anns.LatticeDecl] = None
        if lattice_ann is not None:
            decl = self._parse_lattice_payload(lattice_ann.value, context, lattice_ann)
        elif default_ann is not None:
            decl = self._parse_lattice_payload(default_ann.value, context, default_ann)
        if decl is not None:
            for entry in decl.orderings:
                lattice.add_ordering(entry.lower, entry.higher)
            for shared in decl.shared:
                lattice.add_shared(shared)
            for name in decl.standalone:
                lattice.add_element(name)
        try:
            lattice.validate()
        except Exception as exc:
            self.sink.report(Check.LATTICE, str(exc), node=method, context=context)

        env = MethodLocEnv(class_name=cls.name, method=method, lattice=lattice)
        env.trusted = (
            cls.name in self.trusted_classes
            or ast.annotation_named(method.annotations, TRUSTED) is not None
        )

        this_ann = ast.annotation_named(method.annotations, "THISLOC")
        if this_ann is not None:
            try:
                env.this_loc = anns.parse_single_loc(str(this_ann.value))
                lattice.add_element(env.this_loc)
            except anns.AnnotationSyntaxError as exc:
                self.sink.report(Check.ANNOTATION, str(exc), node=this_ann,
                                 context=context)

        global_ann = ast.annotation_named(method.annotations, "GLOBALLOC")
        if global_ann is not None:
            try:
                env.global_loc = anns.parse_single_loc(str(global_ann.value))
                lattice.add_element(env.global_loc)
            except anns.AnnotationSyntaxError as exc:
                self.sink.report(Check.ANNOTATION, str(exc), node=global_ann,
                                 context=context)

        for ann_name, attr in (("RETURNLOC", "return_spec"), ("PCLOC", "pc_spec")):
            found = ast.annotation_named(method.annotations, ann_name)
            if found is not None:
                try:
                    setattr(env, attr, anns.parse_loc_spec(str(found.value)))
                except anns.AnnotationSyntaxError as exc:
                    self.sink.report(Check.ANNOTATION, str(exc), node=found,
                                     context=context)

        delegated = set()
        for param in method.params:
            if ast.annotation_named(param.annotations, "DELEGATE") is not None:
                delegated.add(param.name)
            loc_ann = ast.annotation_named(param.annotations, "LOC")
            delta_ann = ast.annotation_named(param.annotations, "DELTA")
            spec = self._spec_from(loc_ann, delta_ann, context)
            if spec is not None:
                env.param_specs[param.name] = spec
        env.delegated = frozenset(delegated)

        self._collect_var_specs(method.body, env, context)
        self.method_envs[(cls.name, method.name)] = env

    def _spec_from(
        self,
        loc_ann: Optional[ast.Annotation],
        delta_ann: Optional[ast.Annotation],
        context: str,
    ) -> Optional[anns.LocSpec]:
        try:
            if loc_ann is not None:
                return anns.parse_loc_spec(str(loc_ann.value))
            if delta_ann is not None:
                spec = anns.parse_loc_spec(str(delta_ann.value))
                return anns.LocSpec(
                    elements=spec.elements, delta_depth=spec.delta_depth + 1
                )
        except anns.AnnotationSyntaxError as exc:
            self.sink.report(Check.ANNOTATION, str(exc), context=context)
        return None

    def _collect_var_specs(
        self, stmt: ast.Stmt, env: MethodLocEnv, context: str
    ) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._collect_var_specs(child, env, context)
        elif isinstance(stmt, ast.VarDecl):
            loc_ann = ast.annotation_named(stmt.annotations, "LOC")
            delta_ann = ast.annotation_named(stmt.annotations, "DELTA")
            spec = self._spec_from(loc_ann, delta_ann, context)
            if spec is not None:
                env.var_specs[stmt.name] = spec
        elif isinstance(stmt, ast.If):
            self._collect_var_specs(stmt.then_body, env, context)
            if stmt.else_body is not None:
                self._collect_var_specs(stmt.else_body, env, context)
        elif isinstance(stmt, ast.While):
            self._collect_var_specs(stmt.body, env, context)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._collect_var_specs(stmt.init, env, context)
            self._collect_var_specs(stmt.body, env, context)

    # -- resolution -------------------------------------------------------

    def env_of(self, class_name: str, method_name: str) -> Optional[MethodLocEnv]:
        return self.method_envs.get((class_name, method_name))

    def field_lattice(self, class_name: str) -> Lattice:
        return self.field_lattices[class_name]

    def field_element(self, class_name: str, field_name: str) -> Optional[str]:
        """The field-lattice element of a field, searching superclasses."""
        for owner in self.info.ancestry(class_name):
            element = self.field_locs.get((owner, field_name))
            if element is not None:
                return element
        return None

    def field_loc_lattice(self, class_name: str, field_name: str) -> Optional[Lattice]:
        """The lattice that owns the field's location element."""
        for owner in self.info.ancestry(class_name):
            if (owner, field_name) in self.field_locs:
                return self.field_lattices[class_name]
        return None

    def resolve_spec(
        self,
        spec: anns.LocSpec,
        env: MethodLocEnv,
        *,
        node: Optional[ast.Node] = None,
    ) -> Optional[Loc]:
        """Resolve a parsed location spec to a composite location.

        The first element must belong to the method lattice; subsequent
        elements are resolved against field lattices (by the explicit
        class qualifier, or by unique-name search).  Returns ``None`` and
        reports a diagnostic on failure.
        """
        if not spec.elements:
            return None
        first = spec.elements[0]
        if first.class_name is not None:
            self.sink.report(
                Check.ANNOTATION,
                f"the first element of a composite location must be a method "
                f"location, found qualified {first}",
                node=node,
                context=env.name,
            )
            return None
        if first.name not in env.lattice:
            self.sink.report(
                Check.ANNOTATION,
                f"location {first.name!r} is not declared in the lattice of "
                f"method {env.name}",
                node=node,
                context=env.name,
            )
            return None
        elements = [first.name]
        lattices = [env.lattice]
        for ref in spec.elements[1:]:
            lattice = self._resolve_field_element(ref, env, node)
            if lattice is None:
                return None
            elements.append(ref.name)
            lattices.append(lattice)
        loc: Loc = CompositeLocation(tuple(elements), tuple(lattices))
        for _ in range(spec.delta_depth):
            loc = self.delta(loc)
        return loc

    def _resolve_field_element(
        self, ref: anns.LocElementRef, env: MethodLocEnv, node: Optional[ast.Node]
    ) -> Optional[Lattice]:
        if ref.class_name is not None:
            lattice = self.field_lattices.get(ref.class_name)
            if lattice is None:
                self.sink.report(
                    Check.ANNOTATION,
                    f"unknown class {ref.class_name!r} in location {ref}",
                    node=node,
                    context=env.name,
                )
                return None
            if ref.name not in lattice:
                self.sink.report(
                    Check.ANNOTATION,
                    f"class {ref.class_name!r} declares no location {ref.name!r}",
                    node=node,
                    context=env.name,
                )
                return None
            return lattice
        candidates = [
            lattice
            for lattice in self.field_lattices.values()
            if ref.name in lattice.user_elements()
        ]
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            self.sink.report(
                Check.ANNOTATION,
                f"no class declares a field location named {ref.name!r}",
                node=node,
                context=env.name,
            )
        else:
            names = sorted(lat.name for lat in candidates)
            self.sink.report(
                Check.ANNOTATION,
                f"field location {ref.name!r} is ambiguous ({', '.join(names)}); "
                "qualify it as ClassName.location",
                node=node,
                context=env.name,
            )
        return None

    # -- derived locations --------------------------------------------------

    def this_location(self, env: MethodLocEnv) -> Optional[Loc]:
        if env.this_loc is None:
            return None
        return CompositeLocation((env.this_loc,), (env.lattice,))

    def pc_location(self, env: MethodLocEnv) -> Loc:
        """Initial PC location: ``@PCLOC`` if declared, else ⊤."""
        if env.pc_spec is None:
            return TOP_LOC
        resolved = self.resolve_spec(env.pc_spec, env, node=env.method)
        return resolved if resolved is not None else TOP_LOC

    def return_location(self, env: MethodLocEnv) -> Loc:
        """Declared return location: ``@RETURNLOC`` if present, else ⊥
        (any value may be returned, callers learn nothing)."""
        if env.return_spec is None:
            return BOT_LOC
        resolved = self.resolve_spec(env.return_spec, env, node=env.method)
        return resolved if resolved is not None else BOT_LOC

    def param_location(self, env: MethodLocEnv, param: ast.Param) -> Optional[Loc]:
        spec = env.param_specs.get(param.name)
        if spec is None:
            return None
        return self.resolve_spec(spec, env, node=param)

    def var_location(self, env: MethodLocEnv, name: str) -> Optional[Loc]:
        spec = env.var_specs.get(name)
        if spec is None:
            return None
        return self.resolve_spec(spec, env, node=env.method)

    @staticmethod
    def delta(loc: Loc) -> Loc:
        """The delta function (Section 4.1.7): a fresh location strictly
        below ``loc`` and above everything below ``loc``, realized by
        inserting an element into the lattice of the last component.

        Deterministic: ``delta`` of the same location always names the
        same fresh element, so repeated annotations agree.
        """
        if not isinstance(loc, CompositeLocation):
            return loc
        lattice = loc.last_lattice
        fresh = f"Δ({loc.last_element})"
        if fresh not in lattice:
            lattice.insert_below(fresh, loc.last_element)
        return CompositeLocation(
            loc.elements[:-1] + (fresh,), loc.lattices
        )
