"""Object-lifetime bounds — the memory-management extension sketched in
the paper's future work (Chapter 8):

    "The properties checked by the current analysis imply that all
    objects allocated in the main event loop are eventually not accessed
    in the future.  A simple analysis of the lattice can produce symbolic
    bounds on the lifetime of such objects."

The reasoning: a value stored at location L is overwritten (eviction)
every iteration, and values only descend the lattice, so data written
through an allocation reachable only below L is dead once everything at
or below L has turned over — at most the number of lattice levels at or
below L.  For an object allocated in the loop and stored at L, that
yields the bound

    lifetime(alloc) ≤ depth-below(L) + 1   event-loop iterations,

where depth-below(L) is the longest chain from L down to ⊥ through
*user* locations.  Allocations never stored into the heap die at the end
of their iteration (bound 1).

The result enables arena-style reclamation: a runtime can recycle an
iteration-``k`` allocation at iteration ``k + bound`` without a garbage
collector inside the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import composite as cl
from repro.core.environment import LocationWorld, MethodLocEnv
from repro.core.errors import DiagnosticSink
from repro.lang import ast
from repro.lang.callgraph import MethodKey, build_call_graph
from repro.lang.symtab import ProgramInfo


@dataclass(frozen=True)
class AllocationBound:
    """Lifetime bound for one allocation site."""

    method: MethodKey
    node: ast.Expr
    description: str
    #: destination location the allocation is stored at (None: never
    #: escapes the expression/local scope)
    location: Optional[str]
    #: upper bound on the allocation's lifetime in event-loop iterations
    iterations: int

    @property
    def line(self) -> int:
        return self.node.line


class LifetimeAnalysis:
    """Bounds the lifetime of every allocation in the checked scope."""

    def __init__(
        self, info: ProgramInfo, world: Optional[LocationWorld] = None
    ) -> None:
        self.info = info
        self.world = world or LocationWorld(info, DiagnosticSink())
        self.call_graph = build_call_graph(info)

    def scope(self) -> set[MethodKey]:
        loop = self.info.event_loop
        if loop is None:
            return set()
        return {
            key
            for key in self.call_graph.reachable_from(
                (loop.class_name, loop.method.name)
            )
            if (env := self.world.env_of(*key)) is not None and not env.trusted
        }

    def run(self) -> list[AllocationBound]:
        bounds: list[AllocationBound] = []
        for key in sorted(self.scope()):
            cls = self.info.classes.get(key[0])
            method = cls.method_named(key[1]) if cls else None
            env = self.world.env_of(*key)
            if method is None or env is None:
                continue
            collector = _AllocationCollector(self, key, env)
            collector.walk_stmt(method.body)
            bounds.extend(collector.bounds)
        return bounds

    def depth_below(self, loc: cl.Loc) -> int:
        """Longest chain of user locations at or below ``loc``."""
        if isinstance(loc, cl.TopLocType):
            # stored at ⊤: loop-invariant storage — unbounded (should not
            # happen for loop allocations in a checked program)
            return _unbounded()
        if isinstance(loc, cl.BotLocType):
            return 1
        lattice = loc.last_lattice
        element = loc.last_element
        elements = sorted(lattice.user_elements() | {element})
        depth: dict[str, int] = {}

        def chain(node: str) -> int:
            if node in depth:
                return depth[node]
            depth[node] = 1  # placeholder guards against cycles
            below = [
                other
                for other in elements
                if other != node and lattice.lt(other, node)
            ]
            depth[node] = 1 + max((chain(b) for b in below), default=0)
            return depth[node]

        return chain(element)


def _unbounded() -> int:
    return 10**9


class _AllocationCollector:
    def __init__(
        self, analysis: LifetimeAnalysis, key: MethodKey, env: MethodLocEnv
    ) -> None:
        self.analysis = analysis
        self.key = key
        self.env = env
        self.world = analysis.world
        self.bounds: list[AllocationBound] = []
        self._in_loop = False

    # The collector only needs destinations of allocations; it walks
    # statements and inspects initializers/assignment values.

    def walk_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.walk_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            if isinstance(stmt.init, (ast.New, ast.NewArray)):
                loc = self.world.var_location(self.env, stmt.name)
                self._record(stmt.init, loc, f"local {stmt.name!r}")
        elif isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, (ast.New, ast.NewArray)):
                self._record_assign(stmt)
        elif isinstance(stmt, ast.If):
            self.walk_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self.walk_stmt(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.For)):
            was_in_loop = self._in_loop
            if isinstance(stmt, ast.While) and stmt.label in ("SSJAVA", "SJAVA"):
                self._in_loop = True
            if isinstance(stmt, ast.For) and stmt.init is not None:
                self.walk_stmt(stmt.init)
            self.walk_stmt(stmt.body)
            self._in_loop = was_in_loop if not self._in_loop else self._in_loop

    def _record_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            loc = self.world.var_location(self.env, target.name)
            self._record(stmt.value, loc, f"local {target.name!r}")
        elif isinstance(target, ast.FieldAccess):
            resolved = self.analysis.info.field_refs.get(target.uid)
            field_name = target.field_name
            if resolved is not None:
                owner = resolved[0]
                element = self.world.field_element(owner, field_name)
                if element is not None:
                    lattice = self.world.field_lattice(owner)
                    loc = cl.CompositeLocation((element,), (lattice,))
                    self._record(stmt.value, loc, f"field {field_name!r}")
                    return
            self._record(stmt.value, None, f"field {field_name!r}")

    def _record(
        self, alloc: ast.Expr, loc: Optional[cl.Loc], what: str
    ) -> None:
        if loc is None:
            # never escapes to an annotated location: dies with its
            # iteration (or method activation)
            self.bounds.append(
                AllocationBound(
                    method=self.key,
                    node=alloc,
                    description=f"{what}: not heap-reachable after the "
                    "iteration",
                    location=None,
                    iterations=1,
                )
            )
            return
        depth = self.analysis.depth_below(loc)
        self.bounds.append(
            AllocationBound(
                method=self.key,
                node=alloc,
                description=f"stored at {loc} via {what}",
                location=str(loc),
                iterations=depth + 1,
            )
        )


def lifetime_bounds(info: ProgramInfo) -> list[AllocationBound]:
    """Convenience wrapper: lifetime bounds for every allocation in the
    event-loop scope of ``info``."""
    return LifetimeAnalysis(info).run()
