"""SJava's primary contribution: the location type system and the static
analyses that together check self-stabilization.

* :mod:`repro.core.lattice` — location lattices (Ch. 3.2);
* :mod:`repro.core.composite` — composite location types, lexicographic
  ordering, and the GLB algorithm of Fig. 3.2 (Ch. 3.4);
* :mod:`repro.core.annotations` — the annotation grammar of Fig. 3.3;
* :mod:`repro.core.environment` — resolved location environments Γ;
* :mod:`repro.core.flow_checker` — the flow-down rule (Fig. 4.1);
* :mod:`repro.core.linear` — the linear type / ownership discipline;
* :mod:`repro.core.eviction` — the definitely-written analysis
  (Figs. 4.4–4.5) with the shared-location extension;
* :mod:`repro.core.termination` — the loop-termination analysis;
* :mod:`repro.core.inheritance` — subclass lattice-preservation checks;
* :mod:`repro.core.checker` — the driver that runs everything and
  produces a :class:`repro.core.errors.CheckReport`.
"""

from repro.core.checker import CheckReport, SJavaChecker, check_program
from repro.core.errors import Check, Diagnostic, Severity
from repro.core.lattice import Lattice, LatticeError, BOTTOM, TOP

__all__ = [
    "BOTTOM",
    "Check",
    "CheckReport",
    "Diagnostic",
    "Lattice",
    "LatticeError",
    "Severity",
    "SJavaChecker",
    "TOP",
    "check_program",
]
