"""The SJava checker driver.

Runs, in order: the conventional Java-level front end, location
environment construction, the flow-down type checker, the linear type
checker, the inheritance checks, the termination analysis, the
definitely-written (eviction) analysis, and the shared-location
extension.  The result is a :class:`CheckReport`: a program
*self-stabilizes* (Theorem 4.5.3) when the report is error-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs import get_tracer

from repro.core.environment import LocationWorld
from repro.core.errors import Check, Diagnostic, DiagnosticSink, Severity
from repro.core.eviction import EvictionAnalysis, LoopFacts, MethodSummary
from repro.core.flow_checker import FlowChecker
from repro.core.inheritance import InheritanceChecker
from repro.core.linear import LinearTypeChecker
from repro.core.shared import SharedLocationAnalysis
from repro.core.termination import TerminationAnalysis
from repro.lang import ast
from repro.lang.callgraph import CallGraph, MethodKey, build_call_graph
from repro.lang.parser import parse_program
from repro.lang.symtab import ProgramInfo, resolve_program
from repro.lang.typecheck import typecheck_program


@dataclass
class CheckReport:
    """Outcome of checking one program."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    checked_scope: set[MethodKey] = field(default_factory=set)
    loop_facts: Optional[LoopFacts] = None
    summaries: dict[MethodKey, MethodSummary] = field(default_factory=dict)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def self_stabilizing(self) -> bool:
        """True when every check passed: the program provably returns to
        the correct state within a bounded number of loop iterations."""
        return not self.errors

    def errors_of(self, check: Check) -> list[Diagnostic]:
        return [d for d in self.errors if d.check is check]

    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics in source order — by (line, col, check) rather than
        by analysis pass, so output is stable across checker refactors."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def format(self) -> str:
        if not self.diagnostics:
            return "self-stabilizing: all checks passed"
        return "\n".join(str(d) for d in self.sorted_diagnostics())

    def to_dict(self) -> dict:
        """JSON-serializable form.  Only the verdict-bearing parts survive
        (diagnostics + checked scope); the analysis artifacts
        (``loop_facts``, ``summaries``) hold AST references and are not
        serialized."""
        return {
            "self_stabilizing": self.self_stabilizing,
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
            "checked_scope": sorted(
                [cls, meth] for cls, meth in self.checked_scope
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckReport":
        diagnostics = [
            Diagnostic.from_dict(entry)
            for entry in data.get("diagnostics", [])
        ]
        scope = {
            (str(c), str(m)) for c, m in data.get("checked_scope", [])
        }
        return cls(diagnostics=diagnostics, checked_scope=scope)


class SJavaChecker:
    """Checks whether a resolved program self-stabilizes."""

    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self.sink = DiagnosticSink()
        with get_tracer().span("lattice_build"):
            self.world = LocationWorld(info, self.sink)
            self.call_graph: CallGraph = build_call_graph(info)

    def run(self) -> CheckReport:
        from repro.obs.profile import get_profiler
        from repro.obs.resources import get_resource_monitor

        tracer = get_tracer()
        with get_profiler().section("checker.check"), get_resource_monitor().section(
            "checker.check"
        ):
            with tracer.span("check") as span:
                report = self._run(tracer)
                span.count("diagnostics", len(report.diagnostics))
                span.set_attr("self_stabilizing", report.self_stabilizing)
        return report

    def _run(self, tracer) -> CheckReport:
        report = CheckReport()
        loop = self._require_event_loop()
        if loop is None:
            report.diagnostics = self.sink.diagnostics
            return report

        with tracer.span("flow_check") as span:
            flow = FlowChecker(
                self.info, self.world, self.sink, self.call_graph
            )
            scope = flow.check()
            span.count("methods", len(scope))
        report.checked_scope = scope

        with tracer.span("linear"):
            LinearTypeChecker(self.info, self.world, scope, self.sink).run()
        with tracer.span("inheritance"):
            InheritanceChecker(self.info, self.world, self.sink).run()
        with tracer.span("termination"):
            TerminationAnalysis(
                self.info, self.call_graph, scope, self.sink
            ).run()

        trusted = {
            key
            for key in self.call_graph.reachable_from(
                (loop.class_name, loop.method.name)
            )
            if (env := self.world.env_of(*key)) is not None and env.trusted
        }
        with tracer.span("eviction"):
            eviction = EvictionAnalysis(
                self.info,
                self.call_graph,
                scope | trusted,
                flow.facts.via_shared_stmts,
                self.sink,
                trusted=trusted,
            )
            facts = eviction.run()
        report.loop_facts = facts
        report.summaries = eviction.summaries
        if facts is not None:
            with tracer.span("shared"):
                SharedLocationAnalysis(
                    self.info, self.world, facts, self.sink
                ).run()

        report.diagnostics = self.sink.diagnostics
        return report

    def _require_event_loop(self):
        loops = self.info.event_loops
        if not loops:
            self.sink.report(
                Check.STRUCTURE,
                "no main event loop found: label the loop with SSJAVA:",
            )
            return None
        if len(loops) > 1:
            names = ", ".join(f"{l.class_name}.{l.method.name}" for l in loops)
            self.sink.report(
                Check.STRUCTURE,
                f"multiple SSJAVA event loops found ({names}); exactly one "
                "is required",
            )
            return None
        return loops[0]


def check_program(source: str) -> CheckReport:
    """Parse, resolve and check an sjava program for self-stabilization.

    Front-end failures (syntax errors, conventional type errors) raise;
    SJava check failures are reported in the returned
    :class:`CheckReport`.
    """
    with get_tracer().span("parse"):
        program = parse_program(source)
    return check_parsed(program)


def check_parsed(program: ast.Program) -> CheckReport:
    tracer = get_tracer()
    with tracer.span("resolve"):
        info = resolve_program(program)
    with tracer.span("typecheck"):
        typecheck_program(info)
    return SJavaChecker(info).run()
