"""Parsing of SJava annotation values (the grammar of Fig. 3.3).

Annotation *tokens* (``@LATTICE(...)`` etc.) are produced by the language
parser; this module parses the string payloads:

* lattice declarations — ``"A<B,B<C,S*"`` is a list of ``lower<higher``
  ordering entries plus ``loc*`` shared-location entries;
* location lists — ``"CAOBJ,TMP"`` or qualified ``"WDOBJ,WindRec.DIR0"``;
* delta locations — ``"DELTA(WDOBJ,DIR0)"`` with arbitrary nesting, and
  the equivalent ``@DELTA("WDOBJ,DIR0")`` annotation form.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

ANNOTATION_NAMES = frozenset(
    {
        "LATTICE",
        "LOC",
        "THISLOC",
        "RETURNLOC",
        "PCLOC",
        "GLOBALLOC",
        "METHODDEFAULT",
        "DELTA",
        "DELEGATE",
        "MAXLOOP",
        "TRUSTED",
    }
)

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AnnotationSyntaxError(Exception):
    """Raised when an annotation payload does not match the grammar."""


@dataclass(frozen=True)
class OrderEntry:
    """One ``lower<higher`` entry of a lattice declaration."""

    lower: str
    higher: str


@dataclass(frozen=True)
class LatticeDecl:
    """A parsed ``@LATTICE`` / ``@METHODDEFAULT`` payload."""

    orderings: tuple[OrderEntry, ...] = ()
    shared: tuple[str, ...] = ()
    #: Names declared without any ordering entry (``"A"`` bare).
    standalone: tuple[str, ...] = ()

    def all_names(self) -> set[str]:
        names = set(self.shared) | set(self.standalone)
        for entry in self.orderings:
            names.add(entry.lower)
            names.add(entry.higher)
        return names


@dataclass(frozen=True)
class LocElementRef:
    """A single location element, optionally class-qualified."""

    name: str
    class_name: Optional[str] = None

    def __str__(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass(frozen=True)
class LocSpec:
    """A parsed location annotation: a composite element list wrapped in
    ``delta_depth`` applications of the delta function."""

    elements: tuple[LocElementRef, ...] = ()
    delta_depth: int = 0

    def __str__(self) -> str:
        inner = ",".join(str(e) for e in self.elements)
        for _ in range(self.delta_depth):
            inner = f"DELTA({inner})"
        return inner


def _check_ident(name: str, payload: str) -> str:
    name = name.strip()
    if not _IDENT.match(name):
        raise AnnotationSyntaxError(
            f"invalid location name {name!r} in annotation payload {payload!r}"
        )
    return name


def parse_lattice_decl(payload: str) -> LatticeDecl:
    """Parse a lattice declaration such as ``"A<B, B<C, IDX*"``.

    An empty payload declares an empty lattice (just ⊤ and ⊥).
    """
    orderings: list[OrderEntry] = []
    shared: list[str] = []
    standalone: list[str] = []
    text = payload.strip()
    if not text:
        return LatticeDecl()
    for raw_entry in text.split(","):
        entry = raw_entry.strip()
        if not entry:
            raise AnnotationSyntaxError(f"empty entry in lattice payload {payload!r}")
        if entry.endswith("*"):
            shared.append(_check_ident(entry[:-1], payload))
        elif "<" in entry:
            lower_raw, _, higher_raw = entry.partition("<")
            lower = _check_ident(lower_raw, payload)
            higher = _check_ident(higher_raw, payload)
            orderings.append(OrderEntry(lower=lower, higher=higher))
        else:
            # A bare name declares the location without ordering it.
            standalone.append(_check_ident(entry, payload))
    return LatticeDecl(
        orderings=tuple(orderings),
        shared=tuple(shared),
        standalone=tuple(s for s in standalone if s not in shared),
    )


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not nested inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
            current.append(char)
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise AnnotationSyntaxError(f"unbalanced parentheses in {text!r}")
            current.append(char)
        elif char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise AnnotationSyntaxError(f"unbalanced parentheses in {text!r}")
    parts.append("".join(current))
    return parts


def parse_loc_spec(payload: str) -> LocSpec:
    """Parse a ``@LOC`` payload: a location list, possibly delta-wrapped."""
    text = payload.strip()
    depth = 0
    while True:
        upper = text.upper()
        if upper.startswith("DELTA(") and text.endswith(")"):
            depth += 1
            text = text[len("DELTA("):-1].strip()
        else:
            break
    if not text:
        raise AnnotationSyntaxError(f"empty location in annotation {payload!r}")
    elements: list[LocElementRef] = []
    for part in _split_top_level(text):
        part = part.strip()
        if "." in part:
            class_raw, _, name_raw = part.partition(".")
            elements.append(
                LocElementRef(
                    name=_check_ident(name_raw, payload),
                    class_name=_check_ident(class_raw, payload),
                )
            )
        else:
            elements.append(LocElementRef(name=_check_ident(part, payload)))
    return LocSpec(elements=tuple(elements), delta_depth=depth)


def parse_single_loc(payload: str) -> str:
    """Parse a payload that must be a single unqualified element name
    (``@THISLOC``, ``@GLOBALLOC``, field ``@LOC``)."""
    spec = parse_loc_spec(payload)
    if spec.delta_depth or len(spec.elements) != 1 or spec.elements[0].class_name:
        raise AnnotationSyntaxError(
            f"expected a single location name, found {payload!r}"
        )
    return spec.elements[0].name


@dataclass
class AnnotationCounts:
    """Counters for the Fig. 6.3 annotation-effort table."""

    loc: int = 0
    lattice: int = 0
    method_default: int = 0
    other: int = 0
    by_name: dict[str, int] = field(default_factory=dict)

    def record(self, name: str) -> None:
        self.by_name[name] = self.by_name.get(name, 0) + 1
        if name in ("LOC", "THISLOC", "RETURNLOC", "PCLOC", "GLOBALLOC", "DELTA"):
            self.loc += 1
        elif name == "LATTICE":
            self.lattice += 1
        elif name == "METHODDEFAULT":
            self.method_default += 1
        else:
            self.other += 1


def count_annotations(program) -> AnnotationCounts:
    """Count SJava annotations over a parsed program (Fig. 6.3)."""
    from repro.lang import ast

    counts = AnnotationCounts()

    def record_all(annotations: list[ast.Annotation]) -> None:
        for ann in annotations:
            counts.record(ann.name)

    def walk_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            record_all(stmt.annotations)
        elif isinstance(stmt, ast.If):
            walk_stmt(stmt.then_body)
            if stmt.else_body is not None:
                walk_stmt(stmt.else_body)
        elif isinstance(stmt, (ast.While, ast.For)):
            record_all(stmt.annotations)
            walk_stmt(stmt.body)

    for cls in program.classes:
        record_all(cls.annotations)
        for fld in cls.fields:
            record_all(fld.annotations)
        for method in cls.methods:
            record_all(method.annotations)
            for param in method.params:
                record_all(param.annotations)
            walk_stmt(method.body)
    return counts
