"""Shared-location extension of the eviction analysis (Section 4.2.2).

Shared locations (declared ``name*`` in a ``@LATTICE``) permit flows
between memory locations at the *same* composite location — but the
program must not shuffle corrupt values among them forever.  The check:
every memory location belonging to a shared group that is written at all
inside the event loop must be *cleared* — overwritten with a value from a
strictly higher location — at least once per iteration, and this must
happen for the whole group (simultaneously at statement granularity).

Group membership is enumerated statically from the annotations:

* local variables of the event-loop method whose location's final element
  is shared;
* fields whose field-lattice element is shared (array-typed fields count
  as their element sets, matched with the ``[]`` path marker).

The clearing evidence comes from the eviction analysis: ``WT_h`` at the
loop back edge — must-writes whose flow-checker judgment was
"strictly higher source" rather than "via shared".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composite import CompositeLocation
from repro.core.environment import LocationWorld
from repro.core.errors import Check, DiagnosticSink
from repro.core.eviction import ELEMENT, LoopFacts, Path, VAR_PREFIX, covered
from repro.lang import ast
from repro.lang.symtab import ProgramInfo


@dataclass(frozen=True)
class SharedMember:
    """One memory location belonging to a shared group."""

    kind: str  # 'var' | 'field' | 'array-field'
    name: str
    class_name: str = ""

    def describe(self) -> str:
        if self.kind == "var":
            return f"variable {self.name!r}"
        return f"field {self.class_name}.{self.name}"


class SharedLocationAnalysis:
    def __init__(
        self,
        info: ProgramInfo,
        world: LocationWorld,
        facts: LoopFacts,
        sink: DiagnosticSink,
    ) -> None:
        self.info = info
        self.world = world
        self.facts = facts
        self.sink = sink

    def run(self) -> None:
        for group_name, members in sorted(self._groups().items()):
            self._check_group(group_name, members)

    # -- membership ---------------------------------------------------------

    def _groups(self) -> dict[str, list[SharedMember]]:
        groups: dict[str, list[SharedMember]] = {}

        # Fields with shared lattice elements.
        for cls in self.info.program.classes:
            lattice = self.world.field_lattice(cls.name)
            for fld in cls.fields:
                element = self.world.field_locs.get((cls.name, fld.name))
                if element is None or not lattice.is_shared(element):
                    continue
                kind = (
                    "array-field"
                    if isinstance(fld.decl_type, ast.ArrayType)
                    else "field"
                )
                key = f"{cls.name}::{element}"
                groups.setdefault(key, []).append(
                    SharedMember(kind, fld.name, cls.name)
                )

        # Event-loop method local variables with shared locations.
        loop = self.info.event_loop
        if loop is not None:
            env = self.world.env_of(loop.class_name, loop.method.name)
            if env is not None:
                for var_name in sorted(env.var_specs):
                    loc = self.world.var_location(env, var_name)
                    if isinstance(loc, CompositeLocation) and loc.is_shared():
                        key = f"{env.name}::{','.join(loc.elements)}"
                        groups.setdefault(key, []).append(
                            SharedMember("var", var_name)
                        )
        return groups

    # -- checking ------------------------------------------------------------

    def _member_paths(self, member: SharedMember, paths: set[Path]) -> list[Path]:
        if member.kind == "var":
            needle: Path = (VAR_PREFIX + member.name,)
            return [p for p in paths if p == needle]
        matches = []
        for path in paths:
            if member.kind == "field" and path and path[-1] == member.name:
                matches.append(path)
            elif (
                member.kind == "array-field"
                and len(path) >= 2
                and path[-1] == ELEMENT
                and path[-2] == member.name
            ):
                matches.append(path)
        return matches

    def _check_group(self, group_name: str, members: list[SharedMember]) -> None:
        written = {
            member.name: self._member_paths(member, self.facts.may_writes)
            for member in members
        }
        if not any(written.values()):
            return  # the group is never written inside the loop
        for member in members:
            paths = written[member.name]
            if not paths:
                continue  # this member is loop invariant
            cleared = all(
                covered(path, self.facts.must_writes_higher_end)
                for path in paths
            )
            if not cleared:
                self.sink.report(
                    Check.SHARED,
                    f"shared location group {group_name}: {member.describe()} "
                    "is written inside the event loop but is not overwritten "
                    "from a strictly higher location on every iteration — "
                    "corrupt values could circulate in the shared group "
                    "indefinitely",
                )
