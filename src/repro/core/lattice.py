"""Location lattices (Section 3.2).

A :class:`Lattice` is the ordered set of location types declared by one
``@LATTICE`` annotation (one per method, one per class), always extended
with the distinguished top and bottom locations.  The binary relation is
stored as direct "lower-than" edges; the strict partial order is the
transitive closure.

Conventions: ``lt(a, b)`` means *a is strictly lower than b*, i.e. values
may flow from ``b`` to ``a`` (the paper's ``a < b`` / ``a ⊏ b``).
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Reserved names for the distinguished extreme locations.  They use
#: characters that cannot appear in annotation identifiers so user
#: locations can never collide with them.
TOP = "<TOP>"
BOTTOM = "<BOT>"


class LatticeError(Exception):
    """A structural problem with a lattice (cycle, unknown element, ...)."""


class NotALatticeError(LatticeError):
    """GLB/LUB is not uniquely defined for the queried pair.

    Manual ``@LATTICE`` declarations are only required to be partial
    orders syntactically; the checker reports this error with a
    suggestion to add a completion node (inferred lattices are complete
    by construction via Dedekind–MacNeille).
    """

    def __init__(self, kind: str, first: str, second: str, candidates: set[str]):
        super().__init__(
            f"no unique {kind} of {first!r} and {second!r}; "
            f"maximal candidates: {sorted(candidates)}"
        )
        self.kind = kind
        self.pair = (first, second)
        self.candidates = candidates


class Lattice:
    """A finite location lattice with named elements.

    ``name`` identifies the lattice for diagnostics (e.g. ``"class Foo"``
    or ``"method Foo.bar"``).
    """

    def __init__(
        self,
        name: str = "",
        pairs: Iterable[tuple[str, str]] = (),
        shared: Iterable[str] = (),
    ) -> None:
        self.name = name
        self._elements: set[str] = {TOP, BOTTOM}
        #: direct edges: _lower_than[x] = set of elements x is declared below
        self._direct_above: dict[str, set[str]] = {TOP: set(), BOTTOM: set()}
        self._shared: set[str] = set()
        self._closure: Optional[dict[str, set[str]]] = None
        for low, high in pairs:
            self.add_ordering(low, high)
        for element in shared:
            self.add_shared(element)

    # -- construction ---------------------------------------------------

    def add_element(self, element: str) -> None:
        if element not in self._elements:
            self._elements.add(element)
            self._direct_above[element] = set()
            self._closure = None

    def add_ordering(self, lower: str, higher: str) -> None:
        """Declare ``lower < higher`` (the annotation form ``lower<higher``)."""
        if lower == higher:
            raise LatticeError(
                f"{self.name}: location {lower!r} cannot be ordered below itself"
            )
        self.add_element(lower)
        self.add_element(higher)
        self._direct_above[lower].add(higher)
        self._closure = None

    def add_shared(self, element: str) -> None:
        self.add_element(element)
        self._shared.add(element)

    def insert_below(self, fresh: str, existing: str) -> None:
        """Insert ``fresh`` immediately below ``existing``: lower than
        ``existing`` and higher than everything strictly below it.

        This implements the paper's *delta* function (Section 4.1.7).
        """
        if existing not in self._elements:
            raise LatticeError(
                f"{self.name}: cannot insert below unknown location {existing!r}"
            )
        below = [e for e in self._elements
                 if e not in (fresh, BOTTOM) and self.lt(e, existing)]
        self.add_element(fresh)
        self.add_ordering(fresh, existing)
        for element in below:
            self.add_ordering(element, fresh)

    # -- queries ----------------------------------------------------------

    @property
    def elements(self) -> frozenset[str]:
        return frozenset(self._elements)

    def user_elements(self) -> frozenset[str]:
        """Elements excluding the distinguished top and bottom."""
        return frozenset(self._elements - {TOP, BOTTOM})

    def __contains__(self, element: str) -> bool:
        return element in self._elements

    def is_shared(self, element: str) -> bool:
        return element in self._shared

    @property
    def shared_elements(self) -> frozenset[str]:
        return frozenset(self._shared)

    def _strictly_above(self) -> dict[str, set[str]]:
        """Transitive closure: element -> all elements strictly above it.

        Raises :class:`LatticeError` if the declared ordering is cyclic.
        """
        if self._closure is not None:
            return self._closure
        above: dict[str, set[str]] = {}

        def reach(node: str, stack: list[str]) -> set[str]:
            if node in above:
                return above[node]
            if node in stack:
                cycle = stack[stack.index(node):] + [node]
                raise LatticeError(
                    f"{self.name}: cyclic ordering {' < '.join(cycle)}"
                )
            stack.append(node)
            result: set[str] = set()
            for higher in self._direct_above[node]:
                result.add(higher)
                result |= reach(higher, stack)
            stack.pop()
            above[node] = result
            return result

        for element in sorted(self._elements):
            reach(element, [])
        # Everything except TOP is below TOP; BOTTOM is below everything.
        for element in self._elements:
            if element != TOP:
                above[element].add(TOP)
        above[BOTTOM] |= self._elements - {BOTTOM}
        above[TOP].discard(TOP)
        self._closure = above
        return above

    def validate(self) -> None:
        """Raise :class:`LatticeError` if the declared ordering is cyclic."""
        self._strictly_above()

    def lt(self, low: str, high: str) -> bool:
        """Strict ordering: ``low ⊏ high``."""
        self._require(low)
        self._require(high)
        return high in self._strictly_above()[low]

    def leq(self, low: str, high: str) -> bool:
        """Reflexive ordering: ``low ⊑ high``."""
        return low == high or self.lt(low, high)

    def comparable(self, first: str, second: str) -> bool:
        return first == second or self.lt(first, second) or self.lt(second, first)

    def _require(self, element: str) -> None:
        if element not in self._elements:
            raise LatticeError(f"{self.name}: unknown location {element!r}")

    def _maximal(self, candidates: set[str]) -> set[str]:
        return {
            c
            for c in candidates
            if not any(other != c and self.lt(c, other) for other in candidates)
        }

    def _minimal(self, candidates: set[str]) -> set[str]:
        return {
            c
            for c in candidates
            if not any(other != c and self.lt(other, c) for other in candidates)
        }

    def glb(self, first: str, second: str) -> str:
        """Greatest lower bound (the meet operator ⊓)."""
        self._require(first)
        self._require(second)
        if self.leq(first, second):
            return first
        if self.leq(second, first):
            return second
        lower = {
            e
            for e in self._elements
            if self.leq(e, first) and self.leq(e, second)
        }
        maximal = self._maximal(lower)
        if len(maximal) != 1:
            raise NotALatticeError("greatest lower bound", first, second, maximal)
        return next(iter(maximal))

    def lub(self, first: str, second: str) -> str:
        """Least upper bound (the join operator ⊔)."""
        self._require(first)
        self._require(second)
        if self.leq(first, second):
            return second
        if self.leq(second, first):
            return first
        upper = {
            e
            for e in self._elements
            if self.leq(first, e) and self.leq(second, e)
        }
        minimal = self._minimal(upper)
        if len(minimal) != 1:
            raise NotALatticeError("least upper bound", first, second, minimal)
        return next(iter(minimal))

    def height(self) -> int:
        """Number of elements on the longest chain from TOP to BOTTOM."""
        above = self._strictly_above()
        # If a is above b then above[a] ⊂ above[b], so sorting by the size
        # of the above-set processes higher elements first.
        depth: dict[str, int] = {}
        for element in sorted(self._elements, key=lambda e: len(above[e])):
            higher = above[element]
            depth[element] = 1 + max((depth[h] for h in higher), default=-1)
        return depth[BOTTOM] + 1

    def direct_edges(self) -> list[tuple[str, str]]:
        """All declared (lower, higher) pairs.  TOP and BOTTOM never appear
        because their names are unusable in annotations."""
        return [
            (low, high)
            for low, highs in self._direct_above.items()
            for high in highs
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(f"{a}<{b}" for a, b in sorted(self.direct_edges()))
        return f"Lattice({self.name!r}, {edges})"
