"""The flow-down rule: SJava's location type checking (Section 4.1,
Fig. 4.1).

The checker walks every method callable from the main event loop and
verifies that each value flow — explicit (assignments, field/array
stores, argument passing, returns) and implicit (branch conditions via
the program-counter location) — moves values from strictly higher to
strictly lower composite locations, with the shared-location and ⊤
exceptions of Sections 4.1.8 and 4.1.2.

Method invocations are checked compositionally (Section 4.1.5): the
caller must reproduce every ordering relation that the callee's declared
interface (parameters, ``this``, the program counter, the return value)
imposes, and the rule computes the highest caller location for the
return value consistent with the callee's constraints.
"""

from __future__ import annotations

from typing import Optional

from repro.core import composite as cl
from repro.core.environment import LocationWorld, MethodLocEnv
from repro.core.errors import Check, DiagnosticSink
from repro.core.lattice import NotALatticeError
from repro.lang import ast
from repro.lang import types as stypes
from repro.lang.callgraph import CallGraph, MethodKey, build_call_graph
from repro.lang.symtab import BuiltinCall, MethodCall, ProgramInfo


class FlowFacts:
    """Byproducts of flow checking consumed by later analyses."""

    def __init__(self) -> None:
        #: Statements whose destination was written *via a shared location*
        #: (source not strictly higher).  The shared-location extension of
        #: the eviction analysis must see such writes as non-clearing.
        self.via_shared_stmts: set[int] = set()


class FlowChecker:
    """Checks the flow-down rule for every method in the checked scope."""

    def __init__(
        self,
        info: ProgramInfo,
        world: LocationWorld,
        sink: DiagnosticSink,
        call_graph: Optional[CallGraph] = None,
    ) -> None:
        self.info = info
        self.world = world
        self.sink = sink
        self.call_graph = call_graph or build_call_graph(info)
        self.facts = FlowFacts()

    def checked_scope(self) -> set[MethodKey]:
        """Methods reachable from the main event loop, excluding trusted
        methods (whose bodies are manually verified)."""
        loop = self.info.event_loop
        if loop is None:
            return set()
        start: MethodKey = (loop.class_name, loop.method.name)
        scope = self.call_graph.reachable_from(start)
        return {
            key
            for key in scope
            if (env := self.world.env_of(*key)) is not None and not env.trusted
        }

    def check(self) -> set[MethodKey]:
        scope = self.checked_scope()
        for key in sorted(scope):
            env = self.world.env_of(*key)
            if env is not None:
                _MethodFlowChecker(self, env).check()
        return scope


class _MethodFlowChecker:
    """Flow-down checking of a single method body."""

    def __init__(self, parent: FlowChecker, env: MethodLocEnv) -> None:
        self.parent = parent
        self.info = parent.info
        self.world = parent.world
        self.sink = parent.sink
        self.env = env
        self.gamma: dict[str, cl.Loc] = {}
        self._missing: set[str] = set()

    @property
    def context(self) -> str:
        return self.env.name

    def report(self, check: Check, message: str, node: ast.Node) -> None:
        self.sink.report(check, message, node=node, context=self.context)

    # -- entry ------------------------------------------------------------

    def check(self) -> None:
        for param in self.env.method.params:
            loc = self.world.param_location(self.env, param)
            if loc is None:
                self._missing_annotation(f"parameter {param.name!r}", param)
            else:
                self.gamma[param.name] = loc
        pc = self.world.pc_location(self.env)
        self.check_stmt(self.env.method.body, pc)

    def _missing_annotation(self, what: str, node: ast.Node) -> None:
        key = f"{what}@{node.uid}"
        if key not in self._missing:
            self._missing.add(key)
            self.report(
                Check.ANNOTATION,
                f"{what} in method {self.context} is reachable from the main "
                "event loop and needs a location annotation",
                node,
            )

    # -- locations of expressions -------------------------------------------

    def loc_of(self, expr: ast.Expr) -> cl.Loc:
        if isinstance(
            expr,
            (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StringLit, ast.NullLit,
             ast.New, ast.NewArray),
        ):
            # LITERAL rule; fresh objects/arrays are likewise new values.
            return cl.TOP_LOC
        if isinstance(expr, ast.VarRef):
            loc = self.gamma.get(expr.name)
            if loc is None:
                self._missing_annotation(f"variable {expr.name!r}", expr)
                return cl.TOP_LOC
            return loc
        if isinstance(expr, ast.ThisRef):
            this = self.world.this_location(self.env)
            if this is None:
                self._missing_annotation("'this' (@THISLOC)", expr)
                return cl.TOP_LOC
            return this
        if isinstance(expr, ast.FieldAccess):
            return self._loc_of_field_access(expr)
        if isinstance(expr, ast.ArrayAccess):
            # ARRAY_VAR: GLB of array and index locations.
            return self.glb(
                self.loc_of(expr.array), self.loc_of(expr.index), expr
            )
        if isinstance(expr, ast.ArrayLength):
            # Array lengths are fixed at allocation: reading one conveys
            # no mutable state, so it types like a constant.
            return cl.TOP_LOC
        if isinstance(expr, ast.Unary):
            return self.loc_of(expr.operand)
        if isinstance(expr, ast.Binary):
            # OP rule: GLB of the operand locations.
            return self.glb(self.loc_of(expr.left), self.loc_of(expr.right), expr)
        if isinstance(expr, ast.Call):
            return self.check_call(expr, pc=self._current_pc)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def glb(self, first: cl.Loc, second: cl.Loc, node: ast.Node) -> cl.Loc:
        try:
            return cl.glb(first, second)
        except NotALatticeError as exc:
            self.report(
                Check.LATTICE,
                f"{exc} — add a greatest-lower-bound location to the lattice",
                node,
            )
            return cl.BOT_LOC

    def _loc_of_field_access(self, expr: ast.FieldAccess) -> cl.Loc:
        resolved = self.info.field_refs.get(expr.uid)
        if resolved is None:
            return cl.TOP_LOC
        owner, decl = resolved
        if decl.is_static:
            if decl.is_final:
                return cl.TOP_LOC  # constants live at ⊤
            if self.env.global_loc is not None:
                return cl.CompositeLocation(
                    (self.env.global_loc,), (self.env.lattice,)
                )
            self.report(
                Check.FLOW_DOWN,
                f"non-final static field {decl.name!r} needs a @GLOBALLOC in "
                f"method {self.context} (SJava treats statics as constants)",
                expr,
            )
            return cl.TOP_LOC
        base_loc = self.loc_of(expr.obj)
        if not isinstance(base_loc, cl.CompositeLocation):
            return base_loc
        base_type = self.info.expr_types.get(expr.obj.uid)
        class_name = getattr(base_type, "name", owner)
        element = self.world.field_element(class_name, decl.name)
        if element is None:
            self._missing_annotation(
                f"field {class_name}.{decl.name}", expr
            )
            return base_loc
        lattice = self.world.field_lattice(class_name)
        return base_loc.append(element, lattice)

    # -- statements ----------------------------------------------------------

    _current_pc: cl.Loc = cl.TOP_LOC

    def check_stmt(self, stmt: ast.Stmt, pc: cl.Loc) -> None:
        self._current_pc = pc
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.check_stmt(child, pc)
        elif isinstance(stmt, ast.VarDecl):
            loc = self.world.var_location(self.env, stmt.name)
            if loc is None:
                self._missing_annotation(f"variable {stmt.name!r}", stmt)
                loc = cl.TOP_LOC
            self.gamma[stmt.name] = loc
            if stmt.init is not None:
                init_loc = self.loc_of(stmt.init)
                if self._is_reference_expr(stmt.init):
                    self._check_ref_alias(init_loc, loc, pc, stmt, stmt.init)
                else:
                    self._check_flow(init_loc, loc, pc, stmt)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, pc)
        elif isinstance(stmt, ast.If):
            inner_pc = self.glb(pc, self.loc_of(stmt.cond), stmt)
            self.check_stmt(stmt.then_body, inner_pc)
            if stmt.else_body is not None:
                self.check_stmt(stmt.else_body, inner_pc)
        elif isinstance(stmt, ast.While):
            inner_pc = self.glb(pc, self.loc_of(stmt.cond), stmt)
            self.check_stmt(stmt.body, inner_pc)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.check_stmt(stmt.init, pc)
            inner_pc = pc
            if stmt.cond is not None:
                inner_pc = self.glb(pc, self.loc_of(stmt.cond), stmt)
            self.check_stmt(stmt.body, inner_pc)
            if stmt.update is not None:
                self.check_stmt(stmt.update, inner_pc)
            self._current_pc = pc
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, pc)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                self.check_call(stmt.expr, pc=pc)
            else:
                self.loc_of(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _check_assign(self, stmt: ast.Assign, pc: cl.Loc) -> None:
        target = stmt.target
        if isinstance(target, ast.ArrayAccess):
            # ARRAY_ASG: the array must lie below the index value, because
            # the index influences where values land in the array.
            array_loc = self.loc_of(target.array)
            index_loc = self.loc_of(target.index)
            index_flow = cl.can_flow(index_loc, array_loc)
            if not index_flow.allowed:
                self.report(
                    Check.FLOW_DOWN,
                    f"array at {array_loc} must be strictly below its index "
                    f"at {index_loc}",
                    stmt,
                )
            dest_loc = array_loc
        else:
            dest_loc = self.loc_of(target)
        if stmt.op == "=":
            value_loc = self.loc_of(stmt.value)
        else:
            # Compound assignment reads the destination too.
            value_loc = self.glb(dest_loc, self.loc_of(stmt.value), stmt)
        # Reference aliasing through local variables requires all aliases
        # to carry the *same* location type (Section 4.1.6) — a lower
        # alias could be used to read values written through the higher
        # one.  Fresh references (⊤ sources: allocations, owned results)
        # may adopt any location.
        if isinstance(target, ast.VarRef) and self._is_reference_expr(stmt.value):
            self._check_ref_alias(value_loc, dest_loc, pc, stmt, stmt.value)
            return
        self._check_flow(value_loc, dest_loc, pc, stmt)

    def _check_ref_alias(
        self,
        value_loc: cl.Loc,
        dest_loc: cl.Loc,
        pc: cl.Loc,
        node: ast.Node,
        value: ast.Expr,
    ) -> None:
        # Owned references (fresh allocations, null, and method results —
        # methods may only return owned references, Section 4.1.6) may be
        # *lowered* when adopted; borrowed references must keep exactly
        # the location of the reference they alias.
        owned = isinstance(value, (ast.New, ast.NewArray, ast.NullLit, ast.Call))
        if not isinstance(value_loc, cl.TopLocType):
            relation = cl.compare(dest_loc, value_loc)
            ok = relation is cl.Rel.EQUAL or (
                owned and relation is cl.Rel.LOWER
            )
            if not ok:
                self.report(
                    Check.FLOW_DOWN,
                    f"reference alias at {dest_loc} must have the same "
                    f"location type as the reference it copies ({value_loc}) "
                    "— unequal aliases could subvert the flow-down rule "
                    "(Section 4.1.6)",
                    node,
                )
        pc_judgment = cl.pc_allows(pc, dest_loc)
        if not pc_judgment.allowed:
            self.report(
                Check.IMPLICIT_FLOW,
                f"aliasing assignment to {dest_loc} under program counter "
                f"{pc}: {pc_judgment.reason}",
                node,
            )

    def _is_reference_expr(self, expr: ast.Expr) -> bool:
        return isinstance(
            self.info.expr_types.get(expr.uid),
            (stypes.ClassT, stypes.ArrayT, stypes.BuiltinClassT),
        )

    def _check_flow(
        self, value_loc: cl.Loc, dest_loc: cl.Loc, pc: cl.Loc, node: ast.Node
    ) -> None:
        judgment = cl.can_flow(value_loc, dest_loc)
        if judgment.via_shared:
            self.parent.facts.via_shared_stmts.add(node.uid)
        if not judgment.allowed:
            self.report(
                Check.FLOW_DOWN,
                f"illegal value flow {value_loc} → {dest_loc}: "
                f"{judgment.reason}",
                node,
            )
        pc_judgment = cl.pc_allows(pc, dest_loc)
        if not pc_judgment.allowed:
            self.report(
                Check.IMPLICIT_FLOW,
                f"assignment to {dest_loc} under program counter {pc} "
                f"creates an implicit flow: {pc_judgment.reason}",
                node,
            )

    def _check_return(self, stmt: ast.Return, pc: cl.Loc) -> None:
        if stmt.value is None:
            return
        value_loc = self.loc_of(stmt.value)
        declared = self.world.return_location(self.env)
        if isinstance(declared, cl.BotLocType):
            return  # no @RETURNLOC: callers assume the worst
        if not cl.leq(declared, value_loc):
            self.report(
                Check.FLOW_DOWN,
                f"returned value at {value_loc} is below the declared "
                f"@RETURNLOC {declared}",
                stmt,
            )

    # -- method invocation (CALL_SITE, Section 4.1.5) -------------------------

    def check_call(self, call: ast.Call, pc: cl.Loc) -> cl.Loc:
        target = self.info.call_targets.get(call.uid)
        if isinstance(target, BuiltinCall):
            return self._check_builtin_call(call, target, pc)
        if isinstance(target, MethodCall):
            return self._check_user_call(call, target, pc)
        return cl.TOP_LOC

    def _check_builtin_call(
        self, call: ast.Call, target: BuiltinCall, pc: cl.Loc
    ) -> cl.Loc:
        kind = target.sig.kind
        arg_locs = [self.loc_of(arg) for arg in call.args]
        if kind == "input":
            return cl.TOP_LOC
        if kind == "output":
            return cl.BOT_LOC  # value leaves the program
        if kind == "fill":
            array_loc, value_loc = arg_locs
            self._check_flow(value_loc, array_loc, pc, call)
            return cl.BOT_LOC
        if kind == "buffer-insert":
            receiver_loc = self.loc_of(call.receiver)
            self._check_flow(arg_locs[0], receiver_loc, pc, call)
            return cl.BOT_LOC
        if kind in ("buffer-get", "buffer-size"):
            receiver_loc = self.loc_of(call.receiver)
            return cl.glb_all([receiver_loc] + arg_locs)
        # pure
        return cl.glb_all(arg_locs)

    def _check_user_call(
        self, call: ast.Call, target: MethodCall, pc: cl.Loc
    ) -> cl.Loc:
        callee_env = self.world.env_of(target.owner, target.decl.name)
        if callee_env is None:
            return cl.TOP_LOC
        if callee_env.trusted:
            for arg in call.args:
                self.loc_of(arg)
            return cl.TOP_LOC

        receiver_loc: Optional[cl.Loc] = None
        if not target.decl.is_static:
            if call.receiver is None or (
                isinstance(call.receiver, ast.VarRef)
                and call.receiver.name in self.info.classes
            ):
                receiver_loc = (
                    self.world.this_location(self.env) or cl.TOP_LOC
                )
            else:
                receiver_loc = self.loc_of(call.receiver)
        arg_locs = [self.loc_of(arg) for arg in call.args]

        # Interface members: (display name, callee-side loc, caller-side loc)
        members: list[tuple[str, cl.Loc, cl.Loc]] = []
        if receiver_loc is not None and callee_env.this_loc is not None:
            callee_this = cl.CompositeLocation(
                (callee_env.this_loc,), (callee_env.lattice,)
            )
            members.append(("this", callee_this, receiver_loc))
        for param, arg_loc in zip(target.decl.params, arg_locs):
            callee_loc = self.world.param_location(callee_env, param)
            if callee_loc is None:
                continue  # reported when the callee itself is checked
            members.append((param.name, callee_loc, arg_loc))

        def translate(callee_loc: cl.Loc) -> Optional[cl.Loc]:
            """Map a callee composite location into the caller's terms."""
            if not isinstance(callee_loc, cl.CompositeLocation):
                return None
            head = callee_loc.elements[0]
            for name, member_callee, member_caller in members:
                if not isinstance(member_callee, cl.CompositeLocation):
                    continue
                if len(member_callee) == 1 and member_callee.elements[0] == head:
                    if not isinstance(member_caller, cl.CompositeLocation):
                        return member_caller if len(callee_loc) == 1 else None
                    return cl.CompositeLocation(
                        member_caller.elements + callee_loc.elements[1:],
                        member_caller.lattices + callee_loc.lattices[1:],
                    )
            return None

        # (1) this-relative parameter constraints: an argument for a
        # parameter located at ⟨THIS, F, ...⟩ must sit at or above the
        # receiver's ⟨O, F, ...⟩ in the caller (Section 4.1.5).
        for name, callee_loc, caller_loc in members:
            if (
                isinstance(callee_loc, cl.CompositeLocation)
                and len(callee_loc) > 1
            ):
                translated = translate(callee_loc)
                if translated is not None and not cl.leq(translated, caller_loc):
                    self.report(
                        Check.CALL_SITE,
                        f"argument for {name!r} at {caller_loc} must be at or "
                        f"above {translated} (callee declares {callee_loc})",
                        call,
                    )

        # (2) pairwise ordering constraints between interface members.
        pc_member = ("pc", self.world.pc_location(callee_env), pc)
        all_members = members + [pc_member]
        if isinstance(pc_member[1], cl.TopLocType) and not isinstance(
            pc, cl.TopLocType
        ):
            self.report(
                Check.IMPLICIT_FLOW,
                f"method {callee_env.name} has no @PCLOC and therefore cannot "
                f"be called under the constrained program counter {pc}",
                call,
            )
        for i, (name_i, callee_i, caller_i) in enumerate(all_members):
            if name_i == "pc":
                continue  # nothing flows into the program counter
            for j, (name_j, callee_j, caller_j) in enumerate(all_members):
                if i == j:
                    continue
                relation = cl.compare(callee_i, callee_j)
                flows_j_to_i = relation is cl.Rel.LOWER or (
                    relation is cl.Rel.EQUAL
                    and isinstance(callee_i, cl.CompositeLocation)
                    and callee_i.is_shared()
                )
                if not flows_j_to_i:
                    continue
                if name_j == "pc":
                    # The callee's writes below member i were each checked
                    # strictly below its PCLOC, so the caller only needs
                    # its program counter at or above the argument.
                    if not cl.leq(caller_i, caller_j):
                        self.report(
                            Check.IMPLICIT_FLOW,
                            f"calling {callee_env.name} under program "
                            f"counter {caller_j} may create implicit flows "
                            f"into memory reachable from {name_i!r} at "
                            f"{caller_i}",
                            call,
                        )
                    continue
                judgment = cl.can_flow(caller_j, caller_i)
                if not judgment.allowed:
                    self.report(
                        Check.CALL_SITE,
                        f"callee {callee_env.name} may flow {name_j!r} → "
                        f"{name_i!r} ({callee_j} ⊒ {callee_i}) but the caller "
                        f"arguments do not permit {caller_j} → {caller_i}",
                        call,
                    )

        # (3) the caller-side return location.
        declared_ret = self.world.return_location(callee_env)
        if isinstance(declared_ret, cl.TopLocType):
            return cl.TOP_LOC
        contributors: list[cl.Loc] = []
        translated_ret = translate(declared_ret)
        for name, callee_loc, caller_loc in members:
            if not cl.leq(declared_ret, callee_loc):
                continue
            if translated_ret is not None and self._is_prefix(
                callee_loc, declared_ret
            ):
                continue  # replaced by the finer translated location
            contributors.append(caller_loc)
        if translated_ret is not None:
            contributors.append(translated_ret)
        if not contributors:
            return cl.TOP_LOC
        try:
            return cl.glb_all(contributors)
        except NotALatticeError as exc:
            self.report(Check.LATTICE, str(exc), call)
            return cl.BOT_LOC

    @staticmethod
    def _is_prefix(shorter: cl.Loc, longer: cl.Loc) -> bool:
        if not (
            isinstance(shorter, cl.CompositeLocation)
            and isinstance(longer, cl.CompositeLocation)
        ):
            return False
        if len(shorter) > len(longer):
            return False
        return all(
            a == b and la is lb
            for a, la, b, lb in zip(
                shorter.elements, shorter.lattices, longer.elements, longer.lattices
            )
        )
