"""Composite location types and lexicographic ordering (Section 3.4).

A composite location is a sequence of location elements: a method-lattice
element followed by zero or more field-lattice elements.  Each element
carries the lattice it is drawn from.  Two distinguished singletons exist
outside any lattice:

* :data:`TOP_LOC` — the location of literals and constants; values here
  may flow anywhere (Section 4.1.2, LITERAL rule);
* :data:`BOT_LOC` — the location of output sinks; anything may flow here.

The ordering is lexicographic (Equation 3.1) with the *prefix-is-higher*
completion: a composite that is a proper prefix of another is strictly
higher ("if a value is high enough to flow to a reference on the path to
a field, it is high enough to flow to the field").

``glb`` implements Fig. 3.2.  Note: case 1 of the figure's pseudo-code
assigns ⊥ to the remaining elements, while the prose says ⊤; ⊤ (here:
truncation, since a prefix is the greatest extension) is the correct
*greatest* lower bound and is what we implement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.lattice import Lattice


class Rel(enum.Enum):
    LOWER = "lower"
    EQUAL = "equal"
    HIGHER = "higher"
    INCOMPARABLE = "incomparable"

    def flipped(self) -> "Rel":
        if self is Rel.LOWER:
            return Rel.HIGHER
        if self is Rel.HIGHER:
            return Rel.LOWER
        return self


class _Extreme:
    """Base for the TOP/BOT singletons."""

    _NAME = ""

    def __repr__(self) -> str:
        return self._NAME

    def __str__(self) -> str:
        return self._NAME


class TopLocType(_Extreme):
    _NAME = "⊤"


class BotLocType(_Extreme):
    _NAME = "⊥"


TOP_LOC = TopLocType()
BOT_LOC = BotLocType()


@dataclass(frozen=True)
class CompositeLocation:
    """A non-extreme composite location.

    ``elements[i]`` is an element of ``lattices[i]``; lattices are
    compared by identity (each method and class owns exactly one
    :class:`~repro.core.lattice.Lattice` instance).
    """

    elements: tuple[str, ...]
    lattices: tuple[Lattice, ...]

    def __post_init__(self) -> None:
        if len(self.elements) != len(self.lattices):
            raise ValueError("elements and lattices must have equal length")
        if not self.elements:
            raise ValueError("a composite location needs at least one element")

    def __len__(self) -> int:
        return len(self.elements)

    def append(self, element: str, lattice: Lattice) -> "CompositeLocation":
        """The ⊕ operator: extend with one more field element."""
        return CompositeLocation(
            self.elements + (element,), self.lattices + (lattice,)
        )

    def prefix(self, length: int) -> "CompositeLocation":
        return CompositeLocation(self.elements[:length], self.lattices[:length])

    @property
    def last_lattice(self) -> Lattice:
        return self.lattices[-1]

    @property
    def last_element(self) -> str:
        return self.elements[-1]

    def is_shared(self) -> bool:
        """True if the final element is a shared location in its lattice."""
        return self.last_lattice.is_shared(self.last_element)

    def __str__(self) -> str:
        return "⟨" + ",".join(self.elements) + "⟩"


Loc = Union[CompositeLocation, TopLocType, BotLocType]


def compare(first: Loc, second: Loc) -> Rel:
    """Lexicographic composite ordering (Equation 3.1 + extremes)."""
    if isinstance(first, TopLocType):
        return Rel.EQUAL if isinstance(second, TopLocType) else Rel.HIGHER
    if isinstance(second, TopLocType):
        return Rel.LOWER
    if isinstance(first, BotLocType):
        return Rel.EQUAL if isinstance(second, BotLocType) else Rel.LOWER
    if isinstance(second, BotLocType):
        return Rel.HIGHER

    for a_elem, a_lat, b_elem, b_lat in zip(
        first.elements, first.lattices, second.elements, second.lattices
    ):
        if a_lat is not b_lat:
            return Rel.INCOMPARABLE
        if a_elem == b_elem:
            continue
        if a_lat.lt(a_elem, b_elem):
            return Rel.LOWER
        if a_lat.lt(b_elem, a_elem):
            return Rel.HIGHER
        return Rel.INCOMPARABLE
    if len(first) == len(second):
        return Rel.EQUAL
    # A proper prefix is strictly higher than its extensions.
    return Rel.HIGHER if len(first) < len(second) else Rel.LOWER


def leq(first: Loc, second: Loc) -> bool:
    """``first ⊑ second``."""
    return compare(first, second) in (Rel.LOWER, Rel.EQUAL)


def lt(first: Loc, second: Loc) -> bool:
    """``first ⊏ second``."""
    return compare(first, second) is Rel.LOWER


def glb(first: Loc, second: Loc) -> Loc:
    """Greatest lower bound of two composite locations (Fig. 3.2).

    May raise :class:`repro.core.lattice.NotALatticeError` when a manual
    lattice lacks a unique meet for an element pair.
    """
    if isinstance(first, TopLocType):
        return second
    if isinstance(second, TopLocType):
        return first
    if isinstance(first, BotLocType) or isinstance(second, BotLocType):
        return BOT_LOC

    length = min(len(first), len(second))
    for index in range(length):
        a_lat = first.lattices[index]
        if a_lat is not second.lattices[index]:
            # Elements from different lattices: no common structure below
            # the shared prefix, so the GLB collapses to ⊥.
            return BOT_LOC
        a_elem = first.elements[index]
        b_elem = second.elements[index]
        if a_elem == b_elem:
            continue
        meet = a_lat.glb(a_elem, b_elem)
        if meet == a_elem:
            return first  # case 2: first is (weakly) below second here
        if meet == b_elem:
            return second  # case 3
        # Case 1: the meet is strictly below both; the greatest composite
        # starting with it is the bare prefix (⊤-filled remainder).
        return CompositeLocation(
            first.elements[:index] + (meet,), first.lattices[:index] + (a_lat,)
        )
    # One is a prefix of the other (or they are equal): the longer/lower
    # composite is the GLB (case 4 exhausting one side).
    return first if len(first) >= len(second) else second


def glb_all(locs: list[Loc]) -> Loc:
    result: Loc = TOP_LOC
    for loc in locs:
        result = glb(result, loc)
    return result


@dataclass(frozen=True)
class FlowJudgment:
    """Result of a flow-down query: allowed, and whether it relied on a
    shared location (the eviction analysis must then check simultaneous
    clearing, Section 4.1.8)."""

    allowed: bool
    via_shared: bool = False
    reason: str = ""


def can_flow(source: Loc, dest: Loc) -> FlowJudgment:
    """The flow-down rule for one value flow ``source → dest``.

    Values move only to *strictly* lower locations (Section 3.2: the type
    checking rules rely on the strict partial ordering), with two
    exceptions: ⊤ sources (literals/constants/fresh input) flow anywhere,
    and flows between identical *shared* locations are permitted pending
    the shared-clearing check.
    """
    if isinstance(source, TopLocType):
        return FlowJudgment(True, reason="source is ⊤")
    if isinstance(dest, BotLocType):
        return FlowJudgment(True, reason="destination is ⊥")
    relation = compare(dest, source)
    if relation is Rel.LOWER:
        return FlowJudgment(True)
    if (
        relation is Rel.EQUAL
        and isinstance(dest, CompositeLocation)
        and dest.is_shared()
    ):
        return FlowJudgment(True, via_shared=True)
    return FlowJudgment(
        False,
        reason=f"destination {dest} is {relation.value} w.r.t. source {source}",
    )


def pc_allows(pc: Loc, dest: Loc) -> FlowJudgment:
    """Check the implicit-flow premise: the program counter location must
    be strictly higher than any assignment destination (Section 4.1.4)."""
    if isinstance(pc, TopLocType):
        return FlowJudgment(True, reason="pc is ⊤")
    return can_flow(pc, dest)


def format_loc(loc: Loc) -> str:
    return str(loc)


def shared_key(loc: Loc) -> Optional[tuple]:
    """A hashable identity for a shared location group, or None."""
    if isinstance(loc, CompositeLocation) and loc.is_shared():
        return (tuple(id(lat) for lat in loc.lattices), loc.elements)
    return None
