"""Inheritance checks (Section 3.5).

A subclass must preserve the ordering hierarchy of its parent: every
location of the parent's field lattice must appear in the subclass's
hierarchy with the same orderings (realized by the lattice merge in
:class:`repro.core.environment.LocationWorld`; contradictions surface as
cycles there), and the subclass must not introduce *new* orderings
between locations the parent declared but left unordered — otherwise a
cast to the parent type could subvert the parent's flow constraints.

Overridden methods must declare identical interface locations (lattice
relations among parameters, ``this``, the return value and the program
counter), because call sites are checked against the static target.
"""

from __future__ import annotations

from repro.core.environment import LocationWorld
from repro.core.errors import Check, DiagnosticSink
from repro.lang import ast
from repro.lang.symtab import ProgramInfo


class InheritanceChecker:
    def __init__(
        self, info: ProgramInfo, world: LocationWorld, sink: DiagnosticSink
    ) -> None:
        self.info = info
        self.world = world
        self.sink = sink

    def run(self) -> None:
        for cls in self.info.program.classes:
            if cls.superclass is not None:
                self._check_field_hierarchy(cls)
                self._check_overrides(cls)

    def _check_field_hierarchy(self, cls: ast.ClassDecl) -> None:
        parent = cls.superclass
        assert parent is not None
        parent_lattice = self.world.field_lattice(parent)
        child_lattice = self.world.field_lattice(cls.name)
        # The merge in LocationWorld guarantees inclusion; check that the
        # child adds no ordering between locations the parent declared as
        # unordered (value flows allowed by the subclass must equal the
        # parent's for inherited locations).
        parent_elements = parent_lattice.user_elements()
        for low in sorted(parent_elements):
            for high in sorted(parent_elements):
                if low == high:
                    continue
                if child_lattice.lt(low, high) and not parent_lattice.lt(low, high):
                    self.sink.report(
                        Check.INHERITANCE,
                        f"class {cls.name!r} orders inherited locations "
                        f"{low} < {high}, which the parent {parent!r} leaves "
                        "unordered; a view through the parent type could "
                        "subvert the constraint",
                        node=cls,
                        context=cls.name,
                    )

    def _check_overrides(self, cls: ast.ClassDecl) -> None:
        parent = cls.superclass
        assert parent is not None
        for method in cls.methods:
            found = self.info.find_method(parent, method.name)
            if found is None:
                continue
            owner, parent_decl = found
            child_env = self.world.env_of(cls.name, method.name)
            parent_env = self.world.env_of(owner, parent_decl.name)
            if child_env is None or parent_env is None:
                continue
            context = f"{cls.name}.{method.name}"
            if len(parent_decl.params) != len(method.params):
                continue  # conventional typing reports the arity mismatch

            pairs = [
                ("@THISLOC", child_env.this_loc, parent_env.this_loc),
                ("@RETURNLOC", child_env.return_spec, parent_env.return_spec),
                ("@PCLOC", child_env.pc_spec, parent_env.pc_spec),
            ]
            for child_param, parent_param in zip(method.params, parent_decl.params):
                pairs.append(
                    (
                        f"parameter {child_param.name!r}",
                        child_env.param_specs.get(child_param.name),
                        parent_env.param_specs.get(parent_param.name),
                    )
                )
            for what, child_spec, parent_spec in pairs:
                if _spec_repr(child_spec) != _spec_repr(parent_spec):
                    self.sink.report(
                        Check.INHERITANCE,
                        f"override of {owner}.{method.name} must declare the "
                        f"same location for {what} as the parent "
                        f"({_spec_repr(parent_spec)!r} vs "
                        f"{_spec_repr(child_spec)!r})",
                        node=method,
                        context=context,
                    )
            child_edges = set(child_env.lattice.direct_edges())
            parent_edges = set(parent_env.lattice.direct_edges())
            if not parent_edges <= child_edges:
                missing = sorted(parent_edges - child_edges)
                self.sink.report(
                    Check.INHERITANCE,
                    f"override of {owner}.{method.name} drops method-lattice "
                    f"orderings declared by the parent: {missing}",
                    node=method,
                    context=context,
                )


def _spec_repr(spec) -> str:
    return "" if spec is None else str(spec)
