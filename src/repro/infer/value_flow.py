"""Value flow graph construction (Section 5.2.1, Figs. 5.2–5.4).

A node is a tuple of names: a *root* (``'this'``, a parameter or local
variable name, ``'PC'``, ``'RET'``, or a generated intermediate ``IL#``)
followed by a field path.  An edge ``a → b`` records an explicit or
implicit information flow from ``a`` to ``b``, and therefore the
constraint *loc(a) strictly above loc(b)* (except for genuine cycles,
which later merge into shared locations).

Intermediate nodes (``IL#``) are generated wherever the type checker will
compute a GLB — multi-operand expressions feeding a destination, branch
conditions, and call results — so that the eventual lattice has a
location *strictly between* the operands' meet and the destination
(without them the destination itself could be the meet and the strict
flow-down comparison would fail).

Interprocedural flows use per-callee summaries: which interface members
(``this``/parameters) flow into which members' reachable memory or into
the return value, and which members' memory is written at all (for
implicit-flow edges at call sites under branches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang import ast
from repro.lang.callgraph import CallGraph, MethodKey, build_call_graph
from repro.obs import get_tracer
from repro.lang.symtab import BuiltinCall, MethodCall, ProgramInfo

FlowNode = tuple[str, ...]

PC_ROOT = "PC"
RET_ROOT = "RET"
THIS_ROOT = "this"


@dataclass
class RootInfo:
    kind: str  # 'this' | 'param' | 'var' | 'iloc' | 'pc' | 'ret'
    class_name: Optional[str] = None  # static class for reference roots


@dataclass
class MethodFlowGraph:
    key: MethodKey
    nodes: set[FlowNode] = field(default_factory=set)
    edges: set[tuple[FlowNode, FlowNode]] = field(default_factory=set)
    roots: dict[str, RootInfo] = field(default_factory=dict)
    #: fresh field elements created by cycle avoidance / intermediates:
    #: element name -> owning class (whose field hierarchy declares it)
    fresh_elements: dict[str, str] = field(default_factory=dict)
    #: fresh element name -> class of the *value* stored there (for
    #: resolving deeper field positions after a cycle-avoidance rename)
    fresh_value_class: dict[str, str] = field(default_factory=dict)
    params: list[str] = field(default_factory=list)
    has_this: bool = False

    def add_node(self, node: FlowNode) -> FlowNode:
        self.nodes.add(node)
        return node

    def add_edge(self, src: FlowNode, dst: FlowNode) -> None:
        if src == dst:
            # a self flow is a genuine cycle: keep it, the hierarchy stage
            # will merge it into a shared location
            pass
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.add((src, dst))

    def successors(self, node: FlowNode) -> list[FlowNode]:
        return [b for (a, b) in self.edges if a == node]

    def rename_root(self, root: str, prefix: FlowNode) -> None:
        """Rewrite every node rooted at ``root`` to start with ``prefix``
        (cycle avoidance, Section 5.2.2)."""

        def rewrite(node: FlowNode) -> FlowNode:
            if node and node[0] == root:
                return prefix + node[1:]
            return node

        self.edges = {(rewrite(a), rewrite(b)) for (a, b) in self.edges}
        self.nodes = {rewrite(n) for n in self.nodes}


@dataclass(frozen=True)
class MethodFlowSummary:
    """Interface effects of a method, in terms of 'this'/param names."""

    flows: frozenset[tuple[str, str]] = frozenset()  # (src, dst|'RET')
    written: frozenset[str] = frozenset()


EMPTY_SUMMARY = MethodFlowSummary()


class ValueFlowAnalysis:
    """Builds flow graphs for every method reachable from the event loop."""

    def __init__(
        self, info: ProgramInfo, call_graph: Optional[CallGraph] = None
    ) -> None:
        self.info = info
        self.call_graph = call_graph or build_call_graph(info)
        self.graphs: dict[MethodKey, MethodFlowGraph] = {}
        self.summaries: dict[MethodKey, MethodFlowSummary] = {}
        self.trusted: set[MethodKey] = self._trusted_methods()

    def _trusted_methods(self) -> set[MethodKey]:
        trusted = set()
        for cls in self.info.program.classes:
            class_trusted = (
                ast.annotation_named(cls.annotations, "TRUSTED") is not None
            )
            for method in cls.methods:
                if class_trusted or (
                    ast.annotation_named(method.annotations, "TRUSTED") is not None
                ):
                    trusted.add((cls.name, method.name))
        return trusted

    def scope(self) -> set[MethodKey]:
        loop = self.info.event_loop
        if loop is None:
            return set()
        reachable = self.call_graph.reachable_from(
            (loop.class_name, loop.method.name)
        )
        return {key for key in reachable if key not in self.trusted}

    def run(self) -> dict[MethodKey, MethodFlowGraph]:
        scope = self.scope()
        order = self.call_graph.topological_order(scope)
        # Two passes give the fixed point in the presence of summaries
        # that may grow (the scope is recursion-free so one pass in
        # topological order already suffices; the second is a safety net).
        from repro.obs.profile import get_profiler
        from repro.obs.resources import get_resource_monitor

        tracer = get_tracer()
        with get_profiler().section("infer.fixpoint"), get_resource_monitor().section(
            "infer.fixpoint"
        ):
            self._run_rounds(order, tracer)
        return self.graphs

    def _run_rounds(self, order, tracer) -> None:
        for round_index in range(2):
            with tracer.span("fixpoint_round", round=round_index) as span:
                changed = False
                for key in order:
                    cls = self.info.classes[key[0]]
                    method = cls.method_named(key[1])
                    assert method is not None
                    builder = _GraphBuilder(self, key[0], method)
                    graph = builder.build()
                    summary = _summarize(graph)
                    if self.summaries.get(key) != summary:
                        changed = True
                        span.count("summaries_changed")
                    self.graphs[key] = graph
                    self.summaries[key] = summary
                span.count("methods", len(order))
            if not changed:
                break

    def summary_for(self, key: MethodKey) -> MethodFlowSummary:
        return self.summaries.get(key, EMPTY_SUMMARY)


def _summarize(graph: MethodFlowGraph) -> MethodFlowSummary:
    members = [THIS_ROOT] if graph.has_this else []
    members += graph.params
    # reachability over the graph
    succ: dict[FlowNode, set[FlowNode]] = {}
    for a, b in graph.edges:
        succ.setdefault(a, set()).add(b)

    def reachable(start_nodes: list[FlowNode]) -> set[FlowNode]:
        seen: set[FlowNode] = set()
        stack = list(start_nodes)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succ.get(node, ()))
        return seen

    flows: set[tuple[str, str]] = set()
    for src in members:
        rooted = [n for n in graph.nodes if n[0] == src]
        reach = reachable(rooted)
        for node in reach:
            if node == (RET_ROOT,):
                flows.add((src, RET_ROOT))
            elif node[0] in members and node[0] != src and len(node) > 1:
                flows.add((src, node[0]))

    dests = {b for (_, b) in graph.edges}
    written = frozenset(
        m for m in members if any(d[0] == m and len(d) > 1 for d in dests)
    )
    return MethodFlowSummary(flows=frozenset(flows), written=written)


class _GraphBuilder:
    def __init__(
        self, analysis: ValueFlowAnalysis, class_name: str, method: ast.MethodDecl
    ) -> None:
        self.analysis = analysis
        self.info = analysis.info
        self.class_name = class_name
        self.method = method
        self.graph = MethodFlowGraph(key=(class_name, method.name))
        self.pc_stack: list[FlowNode] = []
        self._iloc_counter = 0
        self._pc_node: Optional[FlowNode] = None

    # -- setup -----------------------------------------------------------

    def build(self) -> MethodFlowGraph:
        graph = self.graph
        if not self.method.is_static:
            graph.has_this = True
            graph.roots[THIS_ROOT] = RootInfo("this", self.class_name)
            graph.add_node((THIS_ROOT,))
        for param in self.method.params:
            graph.params.append(param.name)
            graph.roots[param.name] = RootInfo(
                "param", self._class_of_type(param.decl_type)
            )
            graph.add_node((param.name,))
        self.visit_stmt(self.method.body)
        return graph

    def _class_of_type(self, node: ast.TypeNode) -> Optional[str]:
        if isinstance(node, ast.ClassType) and node.name in self.info.classes:
            return node.name
        return None

    def _fresh_iloc(self, prefix: FlowNode) -> FlowNode:
        self._iloc_counter += 1
        name = f"IL{self._iloc_counter}_{self.method.name}"
        if prefix:
            # the fresh element lives in the field hierarchy of the class
            # reached by the prefix path
            owner = self._class_of_path(prefix)
            if owner is not None:
                self.graph.fresh_elements[name] = owner
                return self.graph.add_node(prefix + (name,))
        self.graph.roots[name] = RootInfo("iloc")
        return self.graph.add_node((name,))

    def _class_of_path(self, path: FlowNode) -> Optional[str]:
        root = self.graph.roots.get(path[0])
        current = root.class_name if root else None
        for field_name in path[1:]:
            if current is None:
                return None
            found = self.info.find_field(current, field_name)
            if found is None:
                return None
            decl_type = found[1].decl_type
            current = (
                decl_type.name
                if isinstance(decl_type, ast.ClassType)
                and decl_type.name in self.info.classes
                else None
            )
        return current

    def pc_node(self) -> FlowNode:
        if self._pc_node is None:
            self.graph.roots[PC_ROOT] = RootInfo("pc")
            self._pc_node = self.graph.add_node((PC_ROOT,))
        return self._pc_node

    # -- destinations ---------------------------------------------------------

    def _flow_into(self, sources: set[FlowNode], dests: set[FlowNode]) -> None:
        """Record flows sources → dests, with an intermediate node when
        several sources combine, plus the implicit pc flows."""
        if not dests:
            return
        explicit: set[FlowNode] = set()
        if len(sources) > 1:
            prefix = self._common_prefix(sources, dests)
            iloc = self._fresh_iloc(prefix)
            for src in sources:
                self.graph.add_edge(src, iloc)
            explicit = {iloc}
        else:
            explicit = set(sources)
        for dst in dests:
            for src in explicit:
                if src != dst:
                    self.graph.add_edge(src, dst)
                else:
                    self.graph.add_edge(src, dst)  # genuine cycle
            for pc in self.pc_stack:
                if pc != dst:
                    self.graph.add_edge(pc, dst)
            self.graph.add_edge(self.pc_node(), dst)

    @staticmethod
    def _common_prefix(sources: set[FlowNode], dests: set[FlowNode]) -> FlowNode:
        firsts = {s[0] for s in sources}
        if len(firsts) == 1:
            root = next(iter(firsts))
            if all(len(s) > 1 for s in sources) and all(
                d[0] == root for d in dests
            ):
                return (root,)
        return ()

    # -- statements ---------------------------------------------------------------

    def visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.visit_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            self._declare_var(stmt)
            if stmt.init is not None:
                sources = self.collect(stmt.init)
                self._flow_into(sources, {(stmt.name,)})
        elif isinstance(stmt, ast.Assign):
            self._visit_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._with_condition(stmt.cond, [stmt.then_body, stmt.else_body])
        elif isinstance(stmt, ast.While):
            self._with_condition(stmt.cond, [stmt.body])
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.visit_stmt(stmt.init)
            bodies = [stmt.body] + ([stmt.update] if stmt.update else [])
            if stmt.cond is not None:
                self._with_condition(stmt.cond, bodies)
            else:
                for body in bodies:
                    self.visit_stmt(body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                sources = self.collect(stmt.value)
                self._flow_into(sources, {(RET_ROOT,)})
                self.graph.roots.setdefault(RET_ROOT, RootInfo("ret"))
        elif isinstance(stmt, ast.ExprStmt):
            self.collect(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass

    def _declare_var(self, stmt: ast.VarDecl) -> None:
        self.graph.roots[stmt.name] = RootInfo(
            "var", self._class_of_type(stmt.decl_type)
        )
        self.graph.add_node((stmt.name,))

    def _with_condition(self, cond: ast.Expr, bodies: list) -> None:
        sources = self.collect(cond)
        pushed = False
        if sources:
            # Always materialize a branch node strictly below the
            # condition sources, the initial PC, and any enclosing branch
            # nodes: the type checker computes GLB(pc, loc(cond)) at the
            # branch, and this node guarantees that meet sits strictly
            # above every destination written in the branch.
            node = self._fresh_iloc(self._common_prefix(sources, set()))
            for src in sources:
                self.graph.add_edge(src, node)
            for outer in self.pc_stack:
                self.graph.add_edge(outer, node)
            self.graph.add_edge(self.pc_node(), node)
            self.pc_stack.append(node)
            pushed = True
        for body in bodies:
            if body is not None:
                self.visit_stmt(body)
        if pushed:
            self.pc_stack.pop()

    def _visit_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        sources = self.collect(stmt.value)
        if isinstance(target, ast.VarRef):
            dests = {(target.name,)}
            if stmt.op != "=":
                sources = sources | dests
        elif isinstance(target, ast.FieldAccess):
            base = self.collect(target.obj)
            dests = {p + (target.field_name,) for p in base}
            if stmt.op != "=":
                sources = sources | dests
        elif isinstance(target, ast.ArrayAccess):
            dests = self.collect(target.array)
            # the index value influences where in the array data lands
            sources = sources | self.collect(target.index)
            if stmt.op != "=":
                sources = sources | dests
        else:  # pragma: no cover
            return
        self._flow_into(sources, dests)

    # -- expressions -------------------------------------------------------------

    def collect(self, expr: ast.Expr) -> set[FlowNode]:
        """Sources contributing to the value of ``expr``."""
        if isinstance(
            expr,
            (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StringLit, ast.NullLit,
             ast.New, ast.NewArray, ast.ArrayLength),
        ):
            if isinstance(expr, (ast.New, ast.NewArray)):
                for child in ast.iter_child_exprs(expr):
                    self.collect(child)
            return set()
        if isinstance(expr, ast.VarRef):
            return {self.graph.add_node((expr.name,))}
        if isinstance(expr, ast.ThisRef):
            return {self.graph.add_node((THIS_ROOT,))}
        if isinstance(expr, ast.FieldAccess):
            resolved = self.info.field_refs.get(expr.uid)
            if resolved is not None and resolved[1].is_static:
                return set()  # constants
            return {
                self.graph.add_node(p + (expr.field_name,))
                for p in self.collect(expr.obj)
            }
        if isinstance(expr, ast.ArrayAccess):
            return self.collect(expr.array) | self.collect(expr.index)
        if isinstance(expr, ast.Unary):
            return self.collect(expr.operand)
        if isinstance(expr, ast.Binary):
            return self.collect(expr.left) | self.collect(expr.right)
        if isinstance(expr, ast.Call):
            return self._collect_call(expr)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _collect_call(self, call: ast.Call) -> set[FlowNode]:
        target = self.info.call_targets.get(call.uid)
        if isinstance(target, BuiltinCall):
            return self._collect_builtin(call, target)
        if isinstance(target, MethodCall):
            return self._collect_user_call(call, target)
        return set()

    def _collect_builtin(self, call: ast.Call, target: BuiltinCall) -> set[FlowNode]:
        kind = target.sig.kind
        arg_sources = [self.collect(arg) for arg in call.args]
        if kind == "input":
            return set()
        if kind == "output":
            return set()
        if kind == "fill":
            self._flow_into(arg_sources[1], arg_sources[0])
            return set()
        if kind == "buffer-insert":
            receiver = self.collect(call.receiver)
            self._flow_into(arg_sources[0], receiver)
            return set()
        if kind in ("buffer-get", "buffer-size"):
            receiver = self.collect(call.receiver)
            return receiver | set().union(*arg_sources) if arg_sources else receiver
        # pure
        return set().union(*arg_sources) if arg_sources else set()

    def _collect_user_call(self, call: ast.Call, target: MethodCall) -> set[FlowNode]:
        key: MethodKey = (target.owner, target.decl.name)
        summary = self.analysis.summary_for(key)
        if key in self.analysis.trusted:
            for arg in call.args:
                self.collect(arg)
            return set()  # trusted results are treated as fresh input

        member_sources: dict[str, set[FlowNode]] = {}
        if not target.decl.is_static:
            if call.receiver is None or (
                isinstance(call.receiver, ast.VarRef)
                and call.receiver.name in self.info.classes
            ):
                member_sources[THIS_ROOT] = {(THIS_ROOT,)}
            else:
                member_sources[THIS_ROOT] = self.collect(call.receiver)
        for param, arg in zip(target.decl.params, call.args):
            member_sources[param.name] = self.collect(arg)

        ret_sources: set[FlowNode] = set()
        for src, dst in sorted(summary.flows):
            if dst == RET_ROOT:
                ret_sources |= member_sources.get(src, set())
            else:
                self._flow_into(
                    member_sources.get(src, set()),
                    member_sources.get(dst, set()),
                )
        # implicit flows: calling under a branch writes into `written`
        for member in sorted(summary.written):
            dests = member_sources.get(member, set())
            if dests:
                self._flow_into(set(), dests)

        if not ret_sources:
            return set()
        if len(ret_sources) == 1:
            return ret_sources
        iloc = self._fresh_iloc(self._common_prefix(ret_sources, set()))
        for src in ret_sources:
            self.graph.add_edge(src, iloc)
        return {iloc}
