"""SInfer: the annotation inference algorithm (Chapter 5).

Pipeline:

1. :mod:`repro.infer.value_flow` — per-method **value flow graphs**
   capturing explicit and implicit flows, with interprocedural summaries
   (Figs. 5.2–5.4);
2. :mod:`repro.infer.cycles` — superfluous-cycle avoidance: method-level
   nodes that both receive from and feed an object's fields are reassigned
   composite locations rooted at that object (Section 5.2.2);
3. :mod:`repro.infer.hierarchy` — decomposition into per-method and
   per-class **hierarchy graphs**, merging genuine cycles into shared
   locations (Section 5.2.5);
4. :mod:`repro.infer.simplify` — the SInfer simplification: redundant
   edge removal and same-neighborhood node merging over the hierarchy
   graphs (Section 5.3);
5. :mod:`repro.infer.dedekind` — Dedekind–MacNeille completion of each
   hierarchy graph into a lattice (Section 5.2.6);
6. :mod:`repro.infer.engine` — orchestration: the ``naive`` mode (maximal
   precision, Section 5.2) and the ``sinfer`` mode (simplified,
   Section 5.3); emits inferred annotations back onto the program and
   verifies them with the SJava checker;
7. :mod:`repro.infer.metrics` — lattice complexity metrics for the
   Table 6.1 evaluation (location counts and top-to-bottom path counts).
"""

from repro.infer.engine import InferenceEngine, InferenceResult, infer_annotations
from repro.infer.metrics import LatticeMetrics, lattice_metrics, count_paths

__all__ = [
    "InferenceEngine",
    "InferenceResult",
    "LatticeMetrics",
    "count_paths",
    "infer_annotations",
    "lattice_metrics",
]
