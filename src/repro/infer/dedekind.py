"""Dedekind–MacNeille completion (Section 5.2.6).

The hierarchy graphs are partial orders but not necessarily lattices:
the GLB/LUB of two elements may be undefined.  The completion embeds the
poset into the smallest complete lattice containing it, following the
lazy variant of the Nourine–Raynaud construction: the completion's
elements are the closure under intersection of the principal down-sets
(a Moore family), which, together with the ambient top, is closed under
arbitrary meets — so every GLB and LUB is well defined.

Synthesized elements (intersections that equal no principal ideal) are
named ``GLB#`` — the paper's ``Loc4``/``Loc20`` nodes in Figs. 5.9/5.15.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.lattice import Lattice
from repro.infer.hierarchy import HierarchyGraph


@dataclass
class CompletedLattice:
    """A completed lattice plus the mapping from hierarchy elements
    (canonical names) to lattice element names."""

    lattice: Lattice
    element_of: dict[str, str] = field(default_factory=dict)
    synthesized: list[str] = field(default_factory=list)


def complete(graph: HierarchyGraph, name: str) -> CompletedLattice:
    """Dedekind–MacNeille completion of a hierarchy graph."""
    elements = sorted(graph.elements())
    above = {e: graph.above(e) for e in elements}

    # principal down-sets: down(x) = {y : y <= x}
    down: dict[str, frozenset[str]] = {}
    for element in elements:
        down[element] = frozenset(
            {element} | {y for y in elements if element in above[y]}
        )

    # close the family of principal ideals under intersection
    family: set[frozenset[str]] = set(down.values())
    worklist = sorted(family, key=sorted)
    while worklist:
        current = worklist.pop()
        for other in list(family):
            meet = current & other
            if meet and meet not in family:
                family.add(meet)
                worklist.append(meet)

    principal = {ideal: element for element, ideal in down.items()}
    # A merged hierarchy element may share its ideal with nothing else;
    # if two *different* elements had equal ideals they were equal in the
    # order — the union-find collapsed them already, so `principal` is
    # well defined.

    lattice = Lattice(name=name)
    names: dict[frozenset[str], str] = {}
    counter = 0
    synthesized: list[str] = []
    for ideal in sorted(family, key=lambda s: (len(s), sorted(s))):
        if ideal in principal:
            names[ideal] = principal[ideal]
        else:
            counter += 1
            fresh = f"GLB{counter}"
            names[ideal] = fresh
            synthesized.append(fresh)
        lattice.add_element(names[ideal])

    ordered = sorted(family, key=len)
    for i, smaller in enumerate(ordered):
        for larger in ordered[i + 1:]:
            if smaller < larger and _is_cover(smaller, larger, family):
                lattice.add_ordering(names[smaller], names[larger])

    for shared in graph.shared_elements():
        lattice.add_shared(shared)

    element_of = {e: e for e in elements}
    return CompletedLattice(
        lattice=lattice, element_of=element_of, synthesized=synthesized
    )


def _is_cover(
    smaller: frozenset[str], larger: frozenset[str], family: set[frozenset[str]]
) -> bool:
    for middle in family:
        if smaller < middle < larger:
            return False
    return True
