"""Lattice complexity metrics for the inference evaluation (Table 6.1).

Two measurements per lattice, following Section 6.3.1:

* the number of location types (lattice elements, excluding the ambient
  ⊤/⊥ the implementation always adds);
* the number of distinct top-to-bottom paths through the covering
  relation — a McCabe-style measure of how many ways values can flow
  through the lattice.

Lattices with at most 5 locations count as *simple*, larger ones as
*complex*, matching the paper's thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lattice import BOTTOM, Lattice, TOP

SIMPLE_THRESHOLD = 5

#: Schema version stamped into :meth:`MetricsSummary.to_dict` so service
#: clients can detect drift in the summary layout.  Bump on any
#: key/semantics change.
SUMMARY_SCHEMA = 1


@dataclass(frozen=True)
class LatticeMetrics:
    name: str
    locations: int
    paths: int

    @property
    def is_simple(self) -> bool:
        return self.locations <= SIMPLE_THRESHOLD


def _covers(lattice: Lattice) -> dict[str, set[str]]:
    """covers[x] = elements immediately above x (including TOP/BOTTOM)."""
    elements = sorted(lattice.elements)
    above = {e: {h for h in elements if lattice.lt(e, h)} for e in elements}
    covers: dict[str, set[str]] = {e: set() for e in elements}
    for low in elements:
        for high in above[low]:
            if not any(middle in above[low] and high in above[middle]
                       for middle in elements):
                covers[low].add(high)
    return covers


def count_paths(lattice: Lattice) -> int:
    """Number of maximal chains (TOP→…→BOTTOM paths in the cover graph)."""
    covers = _covers(lattice)
    # paths_up[x] = number of cover paths from x up to TOP
    memo: dict[str, int] = {TOP: 1}

    def paths_up(element: str) -> int:
        if element in memo:
            return memo[element]
        total = sum(paths_up(higher) for higher in covers[element])
        memo[element] = total
        return total

    return paths_up(BOTTOM)


def lattice_metrics(name: str, lattice: Lattice) -> LatticeMetrics:
    return LatticeMetrics(
        name=name,
        locations=len(lattice.user_elements()),
        paths=count_paths(lattice),
    )


@dataclass
class MetricsSummary:
    """Aggregated per-program metrics, split into the paper's simple
    (≤5 locations) and complex (>5) categories."""

    simple_count: int = 0
    simple_locations: int = 0
    simple_paths: int = 0
    complex_count: int = 0
    complex_locations: int = 0
    complex_paths: int = 0

    @property
    def total_locations(self) -> int:
        return self.simple_locations + self.complex_locations

    @property
    def total_paths(self) -> int:
        return self.simple_paths + self.complex_paths

    def to_dict(self) -> dict:
        return {
            "schema": SUMMARY_SCHEMA,
            "simple_count": self.simple_count,
            "simple_locations": self.simple_locations,
            "simple_paths": self.simple_paths,
            "complex_count": self.complex_count,
            "complex_locations": self.complex_locations,
            "complex_paths": self.complex_paths,
            "total_locations": self.total_locations,
            "total_paths": self.total_paths,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSummary":
        schema = data.get("schema", SUMMARY_SCHEMA)
        if schema != SUMMARY_SCHEMA:
            raise ValueError(
                f"unsupported metrics summary schema {schema!r} "
                f"(speaking {SUMMARY_SCHEMA})"
            )
        return cls(
            simple_count=int(data.get("simple_count", 0)),
            simple_locations=int(data.get("simple_locations", 0)),
            simple_paths=int(data.get("simple_paths", 0)),
            complex_count=int(data.get("complex_count", 0)),
            complex_locations=int(data.get("complex_locations", 0)),
            complex_paths=int(data.get("complex_paths", 0)),
        )


def summarize_metrics(per_lattice: list[LatticeMetrics]) -> MetricsSummary:
    summary = MetricsSummary()
    for metrics in per_lattice:
        if metrics.is_simple:
            summary.simple_count += 1
            summary.simple_locations += metrics.locations
            summary.simple_paths += metrics.paths
        else:
            summary.complex_count += 1
            summary.complex_locations += metrics.locations
            summary.complex_paths += metrics.paths
    return summary
