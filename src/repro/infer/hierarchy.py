"""Hierarchy graphs: decomposing value flow graphs into per-method and
per-class orderings (Section 5.2.5).

Each value-flow edge is classified by the first position where its two
composite nodes differ: position 0 is a **method flow** (an edge in the
method hierarchy graph), any later position is a **field flow** (an edge
in the field hierarchy graph of the class owning that position).  Adding
an edge that would close a cycle merges every element on the cycle into
a single *shared* location — exactly the paper's treatment of genuine
cyclic value flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lang import ast
from repro.lang.callgraph import MethodKey
from repro.lang.symtab import ProgramInfo
from repro.infer.value_flow import MethodFlowGraph, FlowNode


class HierarchyGraph:
    """A partial order under construction, with union-find element
    merging and cycle→shared collapsing."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._parent: dict[str, str] = {}
        #: up[x] = elements declared strictly above x (canonical names)
        self._up: dict[str, set[str]] = {}
        self.shared: set[str] = set()

    # -- union-find -------------------------------------------------------

    def add_element(self, element: str) -> str:
        if element not in self._parent:
            self._parent[element] = element
            self._up[element] = set()
        return self.find(element)

    def find(self, element: str) -> str:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def _merge(self, members: set[str]) -> str:
        """Merge ``members`` (canonical names) into one shared element."""
        members = {self.find(m) for m in members}
        representative = min(members)
        combined_up: set[str] = set()
        for member in members:
            combined_up |= self._up.pop(member, set())
            self._parent[member] = representative
        self._parent[representative] = representative
        self._up[representative] = {
            self.find(e) for e in combined_up if self.find(e) != representative
        }
        # re-canonicalize edges pointing at merged members
        for element, ups in self._up.items():
            self._up[element] = {
                self.find(e) for e in ups if self.find(e) != element
            }
        self.shared = {self.find(s) for s in self.shared}
        self.shared.add(representative)
        return representative

    # -- ordering --------------------------------------------------------------

    def _reachable_up(self, start: str) -> set[str]:
        seen: set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._up.get(node, ()))
        return seen

    def add_order(self, lower: str, higher: str) -> None:
        """Record ``lower < higher`` (a flow higher → lower), merging a
        cycle into a shared location if one would form."""
        low = self.add_element(lower)
        high = self.add_element(higher)
        if low == high:
            # a self flow: the location must be shared
            self.shared.add(low)
            return
        # cycle iff high is already (weakly) below low: low ∈ up*(high)
        if low in self._reachable_up(high):
            cycle = {
                node
                for node in self._reachable_up(high)
                if low in self._reachable_up(node) or node == low
            }
            cycle |= {low, high}
            self._merge(cycle)
            return
        self._up[low].add(high)

    # -- export ------------------------------------------------------------------

    def elements(self) -> set[str]:
        return {self.find(e) for e in self._parent}

    def orderings(self) -> set[tuple[str, str]]:
        result = set()
        for low in self.elements():
            for high in self._up.get(low, ()):
                result.add((low, self.find(high)))
        return {(l, h) for (l, h) in result if l != h}

    def shared_elements(self) -> set[str]:
        return {self.find(s) for s in self.shared}

    def canonical(self, element: str) -> str:
        if element not in self._parent:
            return element
        return self.find(element)

    def above(self, element: str) -> set[str]:
        """All canonical elements strictly above ``element``."""
        start = self.canonical(element)
        return self._reachable_up(start) - {start}


@dataclass
class HierarchySet:
    """All hierarchy graphs of one program."""

    method: dict[MethodKey, HierarchyGraph] = field(default_factory=dict)
    fields: dict[str, HierarchyGraph] = field(default_factory=dict)
    #: dropped edges (flows from a field up to its own object reference)
    dropped: list[tuple[MethodKey, FlowNode, FlowNode]] = field(
        default_factory=list
    )

    def field_graph(self, class_name: str) -> HierarchyGraph:
        if class_name not in self.fields:
            self.fields[class_name] = HierarchyGraph(f"class {class_name}")
        return self.fields[class_name]


class _PathClasses:
    """Resolves the class owning each position of a composite node."""

    def __init__(self, info: ProgramInfo, graph: MethodFlowGraph) -> None:
        self.info = info
        self.graph = graph

    def class_at(self, node: FlowNode, position: int) -> Optional[str]:
        """Class whose field hierarchy owns ``node[position]``
        (position >= 1)."""
        root = self.graph.roots.get(node[0])
        current = root.class_name if root is not None else None
        for index in range(1, position):
            if current is None:
                return None
            current = self._value_class(current, node[index])
        return current

    def _value_class(self, class_name: str, element: str) -> Optional[str]:
        found = self.info.find_field(class_name, element)
        if found is not None:
            decl_type = found[1].decl_type
            if (
                isinstance(decl_type, ast.ClassType)
                and decl_type.name in self.info.classes
            ):
                return decl_type.name
            return None
        return self.graph.fresh_value_class.get(element)


def decompose(
    info: ProgramInfo, graphs: dict[MethodKey, MethodFlowGraph]
) -> HierarchySet:
    """Decompose every method's value flow graph into hierarchy graphs."""
    hierarchies = HierarchySet()
    for key in sorted(graphs):
        graph = graphs[key]
        method_graph = HierarchyGraph(f"method {key[0]}.{key[1]}")
        hierarchies.method[key] = method_graph
        paths = _PathClasses(info, graph)

        # register every element so unordered locations still exist
        for node in sorted(graph.nodes):
            method_graph.add_element(node[0])
            for position in range(1, len(node)):
                owner = paths.class_at(node, position)
                if owner is not None:
                    hierarchies.field_graph(owner).add_element(node[position])

        for src, dst in sorted(graph.edges):
            _classify_edge(hierarchies, method_graph, paths, key, src, dst)
    return hierarchies


def _classify_edge(
    hierarchies: HierarchySet,
    method_graph: HierarchyGraph,
    paths: _PathClasses,
    key: MethodKey,
    src: FlowNode,
    dst: FlowNode,
) -> None:
    limit = min(len(src), len(dst))
    for position in range(limit):
        if src[position] != dst[position]:
            if position == 0:
                method_graph.add_order(lower=dst[0], higher=src[0])
            else:
                owner = paths.class_at(src, position)
                if owner is None:
                    hierarchies.dropped.append((key, src, dst))
                else:
                    hierarchies.field_graph(owner).add_order(
                        lower=dst[position], higher=src[position]
                    )
            return
    if len(src) < len(dst):
        # flow from a reference into its own substructure: already implied
        # by lexicographic ordering (a prefix is higher than extensions)
        return
    if len(src) > len(dst):
        # flow from substructure up to the enclosing reference cannot be
        # represented; record it (the engine reports these to developers,
        # Section 5.2.7)
        hierarchies.dropped.append((key, src, dst))
        return
    # identical nodes: a self flow, the element must be shared
    if len(src) == 1:
        element = method_graph.canonical(src[0])
        method_graph.shared.add(element)
    else:
        owner = paths.class_at(src, len(src) - 1)
        if owner is not None:
            graph = hierarchies.field_graph(owner)
            graph.shared.add(graph.canonical(src[-1]))
