"""Superfluous-cycle avoidance (Section 5.2.2).

A method-level node (local variable or intermediate) that both *receives
from* and *feeds into* nodes rooted at the same reference (``this``, a
parameter, or a reference-typed local) would, after decomposition, force
the method hierarchy to order the root both above and below the node — a
cycle that exists only because the default location assignment was too
coarse.  The fix is the paper's: reassign the node a composite location
rooted at that reference (``⟨THIS, FRESH⟩`` in the running example) so
its flows land in the *field* hierarchy instead.

The pass iterates to a fixed point: renaming one node can expose the
same pattern on another.
"""

from __future__ import annotations

from typing import Optional

from repro.infer.value_flow import (
    FlowNode,
    MethodFlowGraph,
    PC_ROOT,
    RET_ROOT,
)

#: Roots that may be renamed: locals and intermediates.  Parameters,
#: ``this``, PC and RET are interface members with fixed method-level
#: locations.
_RENAMEABLE_KINDS = ("var", "iloc")


def avoid_superfluous_cycles(graph: MethodFlowGraph) -> dict[str, FlowNode]:
    """Rename method-level nodes that would create superfluous cycles.

    Returns the mapping from renamed root names to their new prefixes
    (root, fresh-element); the graph is rewritten in place and the fresh
    elements registered in ``graph.fresh_elements``.
    """
    renamed: dict[str, FlowNode] = {}
    for _ in range(len(graph.roots) + 1):
        candidate = _find_candidate(graph)
        if candidate is None:
            break
        root, anchor = candidate
        info = graph.roots[root]
        if root.startswith("IL"):
            fresh = root  # intermediates are already method-qualified
        else:
            fresh = f"L{root}_{graph.key[1]}"
        anchor_class = _root_class(graph, anchor)
        if anchor_class is not None:
            graph.fresh_elements[fresh] = anchor_class
        if info.class_name is not None:
            graph.fresh_value_class[fresh] = info.class_name
        new_prefix: FlowNode = (anchor, fresh)
        graph.rename_root(root, new_prefix)
        renamed[root] = new_prefix
        info.kind = "renamed"
    return renamed


def _root_class(graph: MethodFlowGraph, root: str) -> Optional[str]:
    info = graph.roots.get(root)
    return info.class_name if info is not None else None


def _find_candidate(graph: MethodFlowGraph) -> Optional[tuple[str, str]]:
    """A (renameable root, anchor root) pair where the renameable node is
    on a root-level cycle through the anchor's rooted nodes."""
    succ: dict[FlowNode, set[FlowNode]] = {}
    for a, b in graph.edges:
        succ.setdefault(a, set()).add(b)

    def reachable_roots(start: list[FlowNode]) -> set[str]:
        seen: set[FlowNode] = set()
        stack = list(start)
        roots: set[str] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            roots.add(node[0])
            stack.extend(succ.get(node, ()))
        return roots

    # roots that can reach each renameable node
    for root in sorted(graph.roots):
        info = graph.roots[root]
        if info.kind not in _RENAMEABLE_KINDS:
            continue
        rooted = [n for n in graph.nodes if n[0] == root]
        if not rooted:
            continue
        forward = reachable_roots(rooted) - {root, PC_ROOT, RET_ROOT}
        if not forward:
            continue
        backward = {
            n[0]
            for n in graph.nodes
            if n[0] not in (root, PC_ROOT)
            and root in reachable_roots([n])
        }
        anchors = sorted(
            anchor
            for anchor in forward & backward
            if _is_object_root(graph, anchor)
        )
        if anchors:
            # The paper notes the anchor choice can matter when several
            # objects participate; like the implementation it describes,
            # pick deterministically (first in order).
            return root, anchors[0]
    return None


def _is_object_root(graph: MethodFlowGraph, root: str) -> bool:
    info = graph.roots.get(root)
    if info is None:
        return False
    return info.kind in ("this", "param", "var") and info.class_name is not None
