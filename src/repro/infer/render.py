"""Lattice rendering (the paper's lattice figures 5.9–5.11, 6.4).

Two output formats:

* ``ascii`` — a level-by-level listing with the covering edges, readable
  in a terminal;
* ``dot`` — Graphviz source, for the figure-style pictures.
"""

from __future__ import annotations

from repro.core.lattice import BOTTOM, Lattice, TOP


def _covers(lattice: Lattice) -> dict[str, set[str]]:
    """covers[low] = elements immediately above low."""
    elements = sorted(lattice.elements)
    above = {e: {h for h in elements if lattice.lt(e, h)} for e in elements}
    covers: dict[str, set[str]] = {e: set() for e in elements}
    for low in elements:
        for high in above[low]:
            if not any(mid in above[low] and high in above[mid]
                       for mid in elements):
                covers[low].add(high)
    return covers


def _levels(lattice: Lattice) -> list[list[str]]:
    """Elements grouped by depth below TOP (TOP first, BOTTOM last)."""
    elements = sorted(lattice.elements)
    above = {e: {h for h in elements if lattice.lt(e, h)} for e in elements}
    depth: dict[str, int] = {}
    for element in sorted(elements, key=lambda e: len(above[e])):
        depth[element] = 1 + max(
            (depth[h] for h in above[element]), default=-1
        )
    # force BOTTOM to the deepest level for display
    max_depth = max(depth.values())
    depth[BOTTOM] = max_depth if max_depth > depth.get(BOTTOM, 0) else depth[BOTTOM]
    levels: dict[int, list[str]] = {}
    for element, d in depth.items():
        levels.setdefault(d, []).append(element)
    return [sorted(levels[d]) for d in sorted(levels)]


def _label(lattice: Lattice, element: str) -> str:
    if element == TOP:
        return "⊤"
    if element == BOTTOM:
        return "⊥"
    if lattice.is_shared(element):
        return f"{element}*"
    return element


def render_ascii(lattice: Lattice) -> str:
    """Level-ordered rendering with covering edges."""
    covers = _covers(lattice)
    lines: list[str] = []
    for level in _levels(lattice):
        lines.append("  ".join(_label(lattice, e) for e in level))
        edges = []
        for element in level:
            for lower, highs in sorted(covers.items()):
                if element in highs and lower not in level:
                    edges.append(f"{_label(lattice, element)} > "
                                 f"{_label(lattice, lower)}")
        if edges:
            lines.append("    " + "; ".join(sorted(set(edges))))
    return "\n".join(lines)


def render_dot(lattice: Lattice, name: str = "lattice") -> str:
    """Graphviz source with edges pointing from higher to lower."""
    covers = _covers(lattice)
    safe = name.replace(" ", "_").replace(".", "_").replace("-", "_")
    lines = [f"digraph \"{safe}\" {{", "  rankdir=TB;",
             "  node [shape=box, fontsize=10];"]
    for element in sorted(lattice.elements):
        label = _label(lattice, element)
        style = ""
        if element in (TOP, BOTTOM):
            style = ", style=rounded"
        elif lattice.is_shared(element):
            style = ", style=dashed"
        lines.append(f'  "{element}" [label="{label}"{style}];')
    for lower, highs in sorted(covers.items()):
        for higher in sorted(highs):
            lines.append(f'  "{higher}" -> "{lower}";')
    lines.append("}")
    return "\n".join(lines)


def render_lattice(lattice: Lattice, fmt: str = "ascii") -> str:
    if fmt == "dot":
        return render_dot(lattice, lattice.name or "lattice")
    return render_ascii(lattice)
