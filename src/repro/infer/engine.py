"""The inference engine: orchestration, annotation emission, verification
(Sections 5.2, 5.3, 6.3).

Two modes:

* ``naive`` — the maximally precise pipeline of Section 5.2: every
  variable, field and intermediate keeps its own location; the hierarchy
  graphs go straight into Dedekind–MacNeille completion.
* ``sinfer`` — the simplified pipeline of Section 5.3: redundant edges
  removed and equivalent nodes merged before completion, keeping
  interface members precise.

The engine rewrites the program's annotations with the inferred
locations, prints it back to sjava source, and (on request) verifies the
result with the full SJava checker — the paper's correctness criterion
("we used the SJava type checker to verify the correctness of the
generated annotations").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.checker import CheckReport, check_program
from repro.core.lattice import Lattice
from repro.obs import get_tracer, timed_span
from repro.infer.cycles import avoid_superfluous_cycles
from repro.infer.dedekind import CompletedLattice, complete
from repro.infer.hierarchy import HierarchyGraph, HierarchySet, decompose
from repro.infer.metrics import (
    LatticeMetrics,
    MetricsSummary,
    lattice_metrics,
    summarize_metrics,
)
from repro.infer.simplify import simplify_hierarchy
from repro.infer.value_flow import (
    FlowNode,
    MethodFlowGraph,
    PC_ROOT,
    RET_ROOT,
    THIS_ROOT,
    ValueFlowAnalysis,
)
from repro.lang import ast
from repro.lang.callgraph import MethodKey
from repro.lang.printer import print_program
from repro.lang.symtab import ProgramInfo

_LOCATION_ANNOTATION_NAMES = frozenset(
    {"LATTICE", "METHODDEFAULT", "LOC", "THISLOC", "RETURNLOC", "PCLOC",
     "GLOBALLOC", "DELTA"}
)


@dataclass
class InferenceResult:
    mode: str
    annotated_source: str
    lattices: dict[str, Lattice]
    per_lattice: list[LatticeMetrics]
    summary: MetricsSummary
    elapsed_seconds: float
    #: flows the type system cannot represent (Section 5.2.7)
    dropped_flows: list
    check_report: Optional[CheckReport] = None
    #: Wall seconds per pipeline phase (value_flow, cycle_elimination,
    #: decompose, simplify, complete, emit, verify) — the span-derived
    #: timings the service reports.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def verified(self) -> bool:
        return self.check_report is not None and self.check_report.self_stabilizing

    def summary_dict(self) -> dict:
        """Stable, JSON-serializable summary of an inference run.

        Lattices and per-method graphs stay in memory; what crosses the
        wire (``repro infer --json``, the daemon's ``infer`` op) is the
        verdict plus the Table 6.1 metrics.
        """
        payload = {
            "mode": self.mode,
            "summary": self.summary.to_dict(),
            "lattice_count": len(self.per_lattice),
            "dropped_flows": len(self.dropped_flows),
            "elapsed_seconds": self.elapsed_seconds,
            "verified": self.check_report is not None and self.verified,
            "checked": self.check_report is not None,
        }
        if self.check_report is not None:
            payload["check_report"] = self.check_report.to_dict()
        return payload


class InferenceEngine:
    def __init__(self, info: ProgramInfo, mode: str = "sinfer") -> None:
        if mode not in ("sinfer", "naive"):
            raise ValueError(f"unknown inference mode {mode!r}")
        self.info = info
        self.mode = mode

    def run(self, verify: bool = True) -> InferenceResult:
        phases: dict[str, float] = {}
        with get_tracer().span("infer", mode=self.mode):
            return self._run(verify, phases)

    def _run(self, verify: bool, phases: dict[str, float]) -> InferenceResult:
        start = time.perf_counter()
        with timed_span("value_flow", phases):
            analysis = ValueFlowAnalysis(self.info)
            graphs = analysis.run()
        with timed_span("cycle_elimination", phases) as span:
            renamed: dict[MethodKey, dict[str, FlowNode]] = {}
            for key, graph in graphs.items():
                renamed[key] = avoid_superfluous_cycles(graph)
            span.count("renamed_vars", sum(len(r) for r in renamed.values()))

        with timed_span("decompose", phases):
            hierarchies = decompose(self.info, graphs)

        if self.mode == "sinfer":
            with timed_span("simplify", phases):
                self._simplify(graphs, hierarchies)

        completed: dict[str, CompletedLattice] = {}
        lattices: dict[str, Lattice] = {}
        metrics: list[LatticeMetrics] = []
        with timed_span("complete", phases) as span:
            for key in sorted(hierarchies.method):
                name = f"method {key[0]}.{key[1]}"
                done = complete(hierarchies.method[key], name)
                completed[name] = done
                lattices[name] = done.lattice
                metrics.append(lattice_metrics(name, done.lattice))
            for class_name in sorted(hierarchies.fields):
                name = f"class {class_name}"
                done = complete(hierarchies.fields[class_name], name)
                completed[name] = done
                lattices[name] = done.lattice
                metrics.append(lattice_metrics(name, done.lattice))
            span.count("lattices", len(lattices))

        with timed_span("emit", phases):
            source = self._emit(graphs, hierarchies, completed, renamed)
        elapsed = time.perf_counter() - start

        if verify:
            with timed_span("verify", phases):
                report = check_program(source)
        else:
            report = None
        return InferenceResult(
            mode=self.mode,
            annotated_source=source,
            lattices=lattices,
            per_lattice=metrics,
            summary=summarize_metrics(metrics),
            elapsed_seconds=elapsed,
            dropped_flows=list(hierarchies.dropped),
            check_report=report,
            phase_seconds=phases,
        )

    # -- simplification --------------------------------------------------

    def _simplify(
        self,
        graphs: dict[MethodKey, MethodFlowGraph],
        hierarchies: HierarchySet,
    ) -> None:
        for key, hierarchy in hierarchies.method.items():
            graph = graphs[key]
            interface = {THIS_ROOT, PC_ROOT, RET_ROOT} | set(graph.params)
            simplify_hierarchy(hierarchy, interface)
        for class_name, hierarchy in hierarchies.fields.items():
            interface = {
                fld.name
                for owner in self.info.ancestry(class_name)
                for fld in self.info.classes[owner].fields
            }
            simplify_hierarchy(hierarchy, interface)

    # -- emission -----------------------------------------------------------

    def _emit(
        self,
        graphs: dict[MethodKey, MethodFlowGraph],
        hierarchies: HierarchySet,
        completed: dict[str, CompletedLattice],
        renamed: dict[MethodKey, dict[str, FlowNode]],
    ) -> str:
        program = self.info.program
        for cls in program.classes:
            hierarchy = hierarchies.fields.get(cls.name)
            self._strip(cls.annotations)
            if hierarchy is not None:
                payload = self._lattice_payload(
                    completed[f"class {cls.name}"].lattice
                )
                cls.annotations.append(
                    ast.Annotation(name="LATTICE", value=payload)
                )
                for fld in cls.fields:
                    self._strip(fld.annotations)
                    if fld.name in hierarchy._parent:
                        fld.annotations.append(
                            ast.Annotation(
                                name="LOC", value=hierarchy.canonical(fld.name)
                            )
                        )
            for method in cls.methods:
                key: MethodKey = (cls.name, method.name)
                if key in graphs:
                    self._emit_method(
                        method,
                        graphs[key],
                        hierarchies,
                        completed[f"method {cls.name}.{method.name}"],
                        renamed.get(key, {}),
                        hierarchies.method[key],
                    )
        return print_program(program)

    @staticmethod
    def _strip(annotations: list[ast.Annotation]) -> None:
        annotations[:] = [
            a for a in annotations if a.name not in _LOCATION_ANNOTATION_NAMES
        ]

    def _emit_method(
        self,
        method: ast.MethodDecl,
        graph: MethodFlowGraph,
        hierarchies: HierarchySet,
        done: CompletedLattice,
        renames: dict[str, FlowNode],
        hierarchy: HierarchyGraph,
    ) -> None:
        self._strip(method.annotations)
        method.annotations.append(
            ast.Annotation(name="LATTICE", value=self._lattice_payload(done.lattice))
        )
        if graph.has_this:
            method.annotations.append(
                ast.Annotation(
                    name="THISLOC", value=hierarchy.canonical(THIS_ROOT)
                )
            )
        if RET_ROOT in {n[0] for n in graph.nodes}:
            method.annotations.append(
                ast.Annotation(
                    name="RETURNLOC", value=hierarchy.canonical(RET_ROOT)
                )
            )
        if PC_ROOT in {n[0] for n in graph.nodes}:
            method.annotations.append(
                ast.Annotation(name="PCLOC", value=hierarchy.canonical(PC_ROOT))
            )
        for param in method.params:
            self._strip(param.annotations)
            param.annotations.append(
                ast.Annotation(
                    name="LOC", value=hierarchy.canonical(param.name)
                )
            )
        self._annotate_vars(method.body, graph, hierarchies, hierarchy, renames)

    def _annotate_vars(
        self,
        stmt: ast.Stmt,
        graph: MethodFlowGraph,
        hierarchies: HierarchySet,
        method_hierarchy: HierarchyGraph,
        renames: dict[str, FlowNode],
    ) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self._annotate_vars(
                    child, graph, hierarchies, method_hierarchy, renames
                )
        elif isinstance(stmt, ast.VarDecl):
            self._strip(stmt.annotations)
            loc = self._var_location(
                stmt.name, graph, hierarchies, method_hierarchy, renames
            )
            if loc is not None:
                stmt.annotations.append(ast.Annotation(name="LOC", value=loc))
        elif isinstance(stmt, ast.If):
            self._annotate_vars(
                stmt.then_body, graph, hierarchies, method_hierarchy, renames
            )
            if stmt.else_body is not None:
                self._annotate_vars(
                    stmt.else_body, graph, hierarchies, method_hierarchy, renames
                )
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.For) and stmt.init is not None:
                self._annotate_vars(
                    stmt.init, graph, hierarchies, method_hierarchy, renames
                )
            self._annotate_vars(
                stmt.body, graph, hierarchies, method_hierarchy, renames
            )

    def _var_location(
        self,
        name: str,
        graph: MethodFlowGraph,
        hierarchies: HierarchySet,
        method_hierarchy: HierarchyGraph,
        renames: dict[str, FlowNode],
    ) -> Optional[str]:
        if name in renames:
            anchor, fresh = renames[name]
            owner = graph.fresh_elements.get(fresh)
            elements = [method_hierarchy.canonical(anchor)]
            if owner is not None and owner in hierarchies.fields:
                elements.append(hierarchies.fields[owner].canonical(fresh))
            else:
                elements.append(fresh)
            return ",".join(elements)
        if name in graph.roots:
            return method_hierarchy.canonical(name)
        return None

    # -- payloads --------------------------------------------------------------

    @staticmethod
    def _lattice_payload(lattice: Lattice) -> str:
        entries: list[str] = []
        mentioned: set[str] = set()
        for low, high in sorted(lattice.direct_edges()):
            entries.append(f"{low}<{high}")
            mentioned.add(low)
            mentioned.add(high)
        for element in sorted(lattice.shared_elements):
            entries.append(f"{element}*")
            mentioned.add(element)
        for element in sorted(lattice.user_elements() - mentioned):
            entries.append(element)
        return ",".join(entries)


def infer_annotations(
    info: ProgramInfo, mode: str = "sinfer", verify: bool = True
) -> InferenceResult:
    """Infer location annotations for a (typically stripped) program."""
    return InferenceEngine(info, mode=mode).run(verify=verify)
