"""SInfer's simplification of hierarchy graphs (Section 5.3).

The naive pipeline assigns every variable, field and intermediate its
own location, producing lattices far too complex for humans (the paper's
SynthesisFilter lattice had 997 locations and ten million paths).
SInfer simplifies while keeping **interface members** (fields,
parameters, ``this``, the return value, the program counter) precisely
ordered:

* **redundant edge removal** — an ordering implied transitively is
  dropped (Section 5.3.2);
* **equivalent node merging** — two elements with identical strict
  upper and lower neighborhoods are merged into one location; merging
  them admits no new information flow (Section 5.3.2, Fig. 5.14).
  Non-interface elements merge freely; interface elements merge only
  with each other, preserving interface precision (Section 5.1.2).

Intermediate (``IL``/``GLB``) elements double as the paper's *merge
points* (Section 5.3.3): they are kept whenever they combine flows from
more than one interface node, and merged away otherwise.
"""

from __future__ import annotations

from repro.infer.hierarchy import HierarchyGraph


def simplify_hierarchy(graph: HierarchyGraph, interface: set[str]) -> None:
    """Simplify ``graph`` in place.

    ``interface`` holds the canonical names of interface elements; all
    other elements are fair game for aggressive merging.
    """
    changed = True
    rounds = 0
    while changed and rounds < 50:
        rounds += 1
        changed = remove_redundant_edges(graph)
        interface_now = {graph.canonical(e) for e in interface}
        changed |= merge_equivalent_nodes(graph, interface_now)


def remove_redundant_edges(graph: HierarchyGraph) -> bool:
    """Drop edges implied by transitivity; True if anything changed."""
    changed = False
    for low in sorted(graph.elements()):
        ups = sorted(graph._up.get(low, set()))
        for high in ups:
            graph._up[low].discard(high)
            if high in graph._reachable_up(low):
                changed = True  # transitively implied: leave it removed
            else:
                graph._up[low].add(high)
    return changed


def merge_equivalent_nodes(graph: HierarchyGraph, interface: set[str]) -> bool:
    """Merge elements with identical neighborhoods; True if merged."""
    elements = sorted(graph.elements())
    down: dict[str, set[str]] = {e: set() for e in elements}
    up: dict[str, set[str]] = {e: set() for e in elements}
    for low in elements:
        for high in graph._up.get(low, set()):
            high = graph.find(high)
            up[low].add(high)
            down.setdefault(high, set()).add(low)

    signature: dict[tuple, list[str]] = {}
    for element in elements:
        shared_flag = element in graph.shared_elements()
        key = (
            frozenset(up[element]),
            frozenset(down.get(element, set())),
            element in interface,
            shared_flag,
        )
        signature.setdefault(key, []).append(element)

    changed = False
    for (ups, downs, is_interface, _), members in signature.items():
        if len(members) < 2:
            continue
        # never merge an element with one of its own neighbors
        members_set = set(members)
        if members_set & set(ups) or members_set & set(downs):
            continue
        _merge_without_shared(graph, members_set)
        changed = True
    return changed


def _merge_without_shared(graph: HierarchyGraph, members: set[str]) -> None:
    """Merge elements that carry no flows between each other: unlike a
    cycle merge, the result is shared only if a member already was."""
    was_shared = bool(members & graph.shared_elements())
    graph._merge(members)
    if not was_shared:
        representative = graph.find(next(iter(members)))
        graph.shared.discard(representative)


