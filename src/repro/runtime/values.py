"""Runtime value representations for the interpreter.

Primitives map to Python natives (``int``, ``float``, ``bool``, ``str``);
references are :class:`ObjectVal`, :class:`ArrayVal`, :class:`BufferVal`
or ``None`` (Java ``null``).
"""

from __future__ import annotations

from typing import Optional

from repro.lang import ast


class ObjectVal:
    """An instance of a user class: a mutable field record."""

    __slots__ = ("class_name", "fields")

    def __init__(self, class_name: str, fields: Optional[dict] = None) -> None:
        self.class_name = class_name
        self.fields: dict[str, object] = fields if fields is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ObjectVal({self.class_name}, {self.fields})"


class ArrayVal:
    """A fixed-length array of primitives."""

    __slots__ = ("items", "default")

    def __init__(self, length: int, default: object) -> None:
        self.items: list[object] = [default] * length
        self.default = default

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayVal({self.items!r})"


class BufferVal:
    """The SJava library ordered buffer (Section 4.1.3).

    ``insert`` shifts every element one position down and writes the new
    value at index 0 — so index 0 is the newest value and index
    ``capacity-1`` the oldest, mirroring the paper's "first element
    lowest, last highest" ordering of locations.
    """

    __slots__ = ("items", "default")

    def __init__(self, capacity: int, default: object) -> None:
        self.items: list[object] = [default] * capacity
        self.default = default

    def insert(self, value: object) -> None:
        self.items.insert(0, value)
        self.items.pop()

    def get(self, index: int) -> object:
        return self.items[index]

    def size(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BufferVal({self.items!r})"


def default_value(node: ast.TypeNode) -> object:
    """The Java default value for a declared type."""
    if isinstance(node, ast.PrimType):
        return {
            "int": 0,
            "float": 0.0,
            "boolean": False,
            "String": None,
            "void": None,
        }[node.name]
    return None


def default_for_semantic(name: str) -> object:
    return {"int": 0, "float": 0.0, "boolean": False, "String": ""}.get(name)


def java_int_div(left: int, right: int) -> int:
    """Java integer division truncates toward zero."""
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient


def java_int_rem(left: int, right: int) -> int:
    """Java ``%`` takes the sign of the dividend."""
    return left - java_int_div(left, right) * right
