"""Closure-compiling execution backend (the code-generation half of
Section 4.4).

The paper's artifact is a compiler: crash avoidance, loop bounds and
fault injection are *generated into the code*.  This backend mirrors
that: each method body is translated once into a tree of Python closures
(dispatch, name resolution and constant folding happen at compile time),
and execution runs the closures.  Semantics are identical to
:class:`repro.runtime.interpreter.Interpreter` — the compiler reuses its
error handling, builtin, injection and device machinery — and the test
suite verifies output equality differentially on every benchmark.

Typical speedup over the tree-walking interpreter: 2–4× (see
``benchmarks/test_backend_comparison.py``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.lang import ast
from repro.lang.symtab import BuiltinCall, MethodCall
from repro.runtime.devices import InputExhausted
from repro.runtime.interpreter import (
    Interpreter,
    SJavaRuntimeError,
    _BreakSignal,
    _ContinueSignal,
    _Frame,
    _ReturnSignal,
    _to_display,
)
from repro.runtime.values import ArrayVal, BufferVal, default_value

ExprFn = Callable[[_Frame], object]
StmtFn = Callable[[_Frame], None]


class CompiledRunner(Interpreter):
    """Drop-in replacement for :class:`Interpreter` that pre-compiles
    every reachable method body into closures."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._compiled: dict[tuple[str, str], StmtFn] = {}

    # -- overridden execution entry points ---------------------------------

    def call_method(self, receiver, static_class, method_name, args):
        dispatch_class = (
            receiver.class_name if hasattr(receiver, "class_name") else static_class
        )
        found = self.info.find_method(dispatch_class, method_name)
        if found is None:
            found = self.info.find_method(static_class, method_name)
        if found is None:
            raise SJavaRuntimeError(
                f"no method {method_name!r} on class {dispatch_class!r}"
            )
        owner, decl = found
        body = self._compiled_body(owner, decl)
        frame = _Frame(this=receiver)
        for param, arg in zip(decl.params, args):
            frame.vars[param.name] = arg
        try:
            body(frame)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def _compiled_body(self, owner: str, decl: ast.MethodDecl) -> StmtFn:
        key = (owner, decl.name)
        cached = self._compiled.get(key)
        if cached is None:
            cached = self.compile_stmt(decl.body)
            self._compiled[key] = cached
        return cached

    # -- statement compilation ------------------------------------------------

    def compile_stmt(self, stmt: ast.Stmt) -> StmtFn:
        if isinstance(stmt, ast.Block):
            steps = [self.compile_stmt(s) for s in stmt.stmts]
            if len(steps) == 1:
                return steps[0]

            def run_block(frame: _Frame) -> None:
                for step in steps:
                    step(frame)

            return run_block
        if isinstance(stmt, ast.VarDecl):
            return self._compile_var_decl(stmt)
        if isinstance(stmt, ast.Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt)
        if isinstance(stmt, ast.While):
            if stmt.label in ("SSJAVA", "SJAVA"):
                return self._compile_event_loop(stmt)
            return self._compile_while(stmt)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                def run_return_void(frame: _Frame) -> None:
                    raise _ReturnSignal(None)

                return run_return_void
            value = self.compile_expr(stmt.value)

            def run_return(frame: _Frame) -> None:
                raise _ReturnSignal(value(frame))

            return run_return
        if isinstance(stmt, ast.Break):
            def run_break(frame: _Frame) -> None:
                raise _BreakSignal()

            return run_break
        if isinstance(stmt, ast.Continue):
            def run_continue(frame: _Frame) -> None:
                raise _ContinueSignal()

            return run_continue
        if isinstance(stmt, ast.ExprStmt):
            expr = self.compile_expr(stmt.expr)

            def run_expr(frame: _Frame) -> None:
                expr(frame)

            return run_expr
        raise SJavaRuntimeError(f"unhandled statement {type(stmt).__name__}", stmt)

    def _compile_var_decl(self, stmt: ast.VarDecl) -> StmtFn:
        name = stmt.name
        if stmt.init is None:
            default = default_value(stmt.decl_type)

            def run_default(frame: _Frame) -> None:
                frame.vars[name] = default

            return run_default
        init = self.compile_expr(stmt.init)
        inject = self._inject

        def run_decl(frame: _Frame) -> None:
            frame.vars[name] = inject(init(frame), stmt)

        return run_decl

    def _compile_assign(self, stmt: ast.Assign) -> StmtFn:
        value = self.compile_expr(stmt.value)
        inject = self._inject
        if stmt.op != "=":
            current = self.compile_expr(stmt.target)
            op = stmt.op[0]
            binary = self._binary_op
            raw_value = value

            def value(frame: _Frame) -> object:  # noqa: F811
                return binary(op, current(frame), raw_value(frame), stmt)

        target = stmt.target
        if isinstance(target, ast.VarRef):
            name = target.name

            def run_var(frame: _Frame) -> None:
                frame.vars[name] = inject(value(frame), stmt)

            return run_var
        if isinstance(target, ast.FieldAccess):
            obj = self.compile_expr(target.obj)
            field_name = target.field_name
            null_error = self._null_error

            def run_field(frame: _Frame) -> None:
                receiver = obj(frame)
                result = inject(value(frame), stmt)
                if receiver is None:
                    null_error("field store on null reference", target)
                    return
                receiver.fields[field_name] = result

            return run_field
        if isinstance(target, ast.ArrayAccess):
            array = self.compile_expr(target.array)
            index = self.compile_expr(target.index)
            bounds_error = self._bounds_error
            null_error = self._null_error

            def run_array(frame: _Frame) -> None:
                arr = array(frame)
                i = index(frame)
                result = inject(value(frame), stmt)
                if arr is None:
                    null_error("array store on null reference", target)
                    return
                if not 0 <= i < len(arr.items):
                    bounds_error(i, len(arr.items), target)
                    return
                arr.items[i] = result

            return run_array
        raise SJavaRuntimeError("invalid assignment target", stmt)

    def _compile_if(self, stmt: ast.If) -> StmtFn:
        cond = self.compile_expr(stmt.cond)
        then_body = self.compile_stmt(stmt.then_body)
        else_body = (
            self.compile_stmt(stmt.else_body) if stmt.else_body is not None else None
        )

        def run_if(frame: _Frame) -> None:
            if cond(frame):
                then_body(frame)
            elif else_body is not None:
                else_body(frame)

        return run_if

    def _compile_event_loop(self, stmt: ast.While) -> StmtFn:
        cond = self.compile_expr(stmt.cond)
        body = self.compile_stmt(stmt.body)
        charge = self._charge

        def run_loop(frame: _Frame) -> None:
            begin_device_iteration = getattr(
                self.device, "begin_iteration", None
            )
            while self.iteration < self.options.max_iterations:
                charge()
                if not cond(frame):
                    break
                if begin_device_iteration is not None:
                    begin_device_iteration(self.iteration)
                if self.injector is not None:
                    self.injector.begin_iteration(self.iteration)
                try:
                    body(frame)
                except InputExhausted:
                    break
                except _BreakSignal:
                    self.iteration += 1
                    self.iteration_marks.append(len(self.sink.values))
                    self._iteration_event()
                    break
                except _ContinueSignal:
                    pass
                self.iteration += 1
                self.iteration_marks.append(len(self.sink.values))
                self._iteration_event()

        return run_loop

    def _compile_while(self, stmt: ast.While) -> StmtFn:
        cond = self.compile_expr(stmt.cond)
        body = self.compile_stmt(stmt.body)
        bound = self._loop_bound(stmt.annotations)
        exceed = self._exceed_bound
        charge = self._charge

        def run_while(frame: _Frame) -> None:
            count = 0
            while cond(frame):
                charge()
                if count >= bound:
                    exceed(stmt)
                    break
                count += 1
                try:
                    body(frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue

        return run_while

    def _compile_for(self, stmt: ast.For) -> StmtFn:
        init = self.compile_stmt(stmt.init) if stmt.init is not None else None
        cond = self.compile_expr(stmt.cond) if stmt.cond is not None else None
        update = self.compile_stmt(stmt.update) if stmt.update is not None else None
        body = self.compile_stmt(stmt.body)
        bound = self._loop_bound(stmt.annotations)
        exceed = self._exceed_bound
        charge = self._charge

        def run_for(frame: _Frame) -> None:
            if init is not None:
                init(frame)
            count = 0
            while cond is None or cond(frame):
                charge()
                if count >= bound:
                    exceed(stmt)
                    break
                count += 1
                try:
                    body(frame)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if update is not None:
                    update(frame)

        return run_for

    # -- expression compilation ----------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> ExprFn:
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit, ast.StringLit)):
            value = expr.value
            return lambda frame: value
        if isinstance(expr, ast.NullLit):
            return lambda frame: None
        if isinstance(expr, ast.VarRef):
            name = expr.name

            def read_var(frame: _Frame) -> object:
                try:
                    return frame.vars[name]
                except KeyError:
                    raise SJavaRuntimeError(
                        f"unbound variable {name!r}", expr
                    ) from None

            return read_var
        if isinstance(expr, ast.ThisRef):
            return lambda frame: frame.this
        if isinstance(expr, ast.FieldAccess):
            return self._compile_field_access(expr)
        if isinstance(expr, ast.ArrayAccess):
            return self._compile_array_access(expr)
        if isinstance(expr, ast.ArrayLength):
            array = self.compile_expr(expr.array)
            null_error = self._null_error

            def read_length(frame: _Frame) -> object:
                arr = array(frame)
                if arr is None:
                    null_error("length of null array", expr)
                    return 0
                return len(arr.items)

            return read_length
        if isinstance(expr, ast.Unary):
            return self._compile_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._compile_binary(expr)
        if isinstance(expr, ast.Call):
            return self._compile_call(expr)
        if isinstance(expr, ast.New):
            return self._compile_new(expr)
        if isinstance(expr, ast.NewArray):
            size = self.compile_expr(expr.size)
            default = default_value(expr.element)
            return lambda frame: ArrayVal(max(0, size(frame)), default)
        raise SJavaRuntimeError(f"unhandled expression {type(expr).__name__}", expr)

    def _compile_field_access(self, expr: ast.FieldAccess) -> ExprFn:
        resolved = self.info.field_refs.get(expr.uid)
        if resolved is not None and resolved[1].is_static:
            owner, decl = resolved
            static_value = self._static_value
            name = expr.field_name
            return lambda frame: static_value(owner, name)
        obj = self.compile_expr(expr.obj)
        field_name = expr.field_name
        null_error = self._null_error
        field_default = (
            default_value(resolved[1].decl_type) if resolved is not None else None
        )

        def read_field(frame: _Frame) -> object:
            receiver = obj(frame)
            if receiver is None:
                null_error("field read on null reference", expr)
                return field_default
            return receiver.fields[field_name]

        return read_field

    def _compile_array_access(self, expr: ast.ArrayAccess) -> ExprFn:
        array = self.compile_expr(expr.array)
        index = self.compile_expr(expr.index)
        bounds_error = self._bounds_error
        null_error = self._null_error

        def read_element(frame: _Frame) -> object:
            arr = array(frame)
            i = index(frame)
            if arr is None:
                null_error("array read on null reference", expr)
                return 0
            if not 0 <= i < len(arr.items):
                bounds_error(i, len(arr.items), expr)
                return arr.default
            return arr.items[i]

        return read_element

    def _compile_unary(self, expr: ast.Unary) -> ExprFn:
        operand = self.compile_expr(expr.operand)
        if expr.op == "-":
            return lambda frame: -operand(frame)
        if expr.op == "!":
            return lambda frame: not operand(frame)
        if expr.op.startswith("cast:"):
            target = expr.op.split(":", 1)[1]
            if target == "int":
                return lambda frame: int(operand(frame))
            if target == "float":
                return lambda frame: float(operand(frame))
        raise SJavaRuntimeError(f"unknown unary operator {expr.op!r}", expr)

    def _compile_binary(self, expr: ast.Binary) -> ExprFn:
        op = expr.op
        if op == "&&":
            left = self.compile_expr(expr.left)
            right = self.compile_expr(expr.right)
            return lambda frame: bool(left(frame)) and bool(right(frame))
        if op == "||":
            left = self.compile_expr(expr.left)
            right = self.compile_expr(expr.right)
            return lambda frame: bool(left(frame)) or bool(right(frame))
        left = self.compile_expr(expr.left)
        right = self.compile_expr(expr.right)
        if op in ("+", "-", "*", "/", "%"):
            binary = self._binary_op
            inject = self._inject

            def run_arith(frame: _Frame) -> object:
                return inject(binary(op, left(frame), right(frame), expr), expr)

            return run_arith
        if op == "<":
            return lambda frame: left(frame) < right(frame)
        if op == ">":
            return lambda frame: left(frame) > right(frame)
        if op == "<=":
            return lambda frame: left(frame) <= right(frame)
        if op == ">=":
            return lambda frame: left(frame) >= right(frame)
        eq_impl = self._compile_equality(left, right, op)
        if eq_impl is not None:
            return eq_impl
        raise SJavaRuntimeError(f"unknown binary operator {op!r}", expr)

    @staticmethod
    def _compile_equality(left: ExprFn, right: ExprFn, op: str) -> Optional[ExprFn]:
        from repro.runtime.interpreter import _both_refs

        if op == "==":
            def run_eq(frame: _Frame) -> object:
                a, b = left(frame), right(frame)
                return a is b if _both_refs(a, b) else a == b

            return run_eq
        if op == "!=":
            def run_ne(frame: _Frame) -> object:
                a, b = left(frame), right(frame)
                return a is not b if _both_refs(a, b) else a != b

            return run_ne
        return None

    def _compile_new(self, expr: ast.New) -> ExprFn:
        if expr.class_name in ("OrderedBuffer", "OrderedIntBuffer"):
            capacity = self.compile_expr(expr.args[0])
            default = 0.0 if expr.class_name == "OrderedBuffer" else 0
            return lambda frame: BufferVal(max(0, capacity(frame)), default)
        class_name = expr.class_name
        instantiate = self.instantiate
        return lambda frame: instantiate(class_name)

    # -- calls ------------------------------------------------------------------------

    def _compile_call(self, call: ast.Call) -> ExprFn:
        target = self.info.call_targets.get(call.uid)
        if isinstance(target, BuiltinCall):
            return self._compile_builtin(call, target)
        if isinstance(target, MethodCall):
            return self._compile_user_call(call, target)
        raise SJavaRuntimeError(f"unresolved call {call.method!r}", call)

    def _compile_builtin(self, call: ast.Call, target: BuiltinCall) -> ExprFn:
        namespace = target.namespace
        name = target.sig.name
        args = [self.compile_expr(arg) for arg in call.args]
        if namespace == "Device":
            read = self.device.read
            return lambda frame: read(name)
        if namespace == "SJ":
            if target.sig.kind == "output":
                emit = self.sink.emit
                arg0 = args[0]

                def run_emit(frame: _Frame) -> object:
                    emit(arg0(frame))
                    return None

                return run_emit
            if name == "toStr":
                arg0 = args[0]
                return lambda frame: _to_display(arg0(frame))
            if name == "fill":
                array, value = args
                null_error = self._null_error

                def run_fill(frame: _Frame) -> object:
                    arr = array(frame)
                    v = value(frame)
                    if arr is None:
                        null_error("SJ.fill on null array", call)
                        return None
                    arr.items[:] = [v] * len(arr.items)
                    return None

                return run_fill
        if namespace == "Math":
            eval_math = self._eval_math
            return lambda frame: eval_math(name, [a(frame) for a in args], call)
        if namespace in ("OrderedBuffer", "OrderedIntBuffer"):
            receiver = self.compile_expr(call.receiver)
            return self._compile_buffer_method(call, name, receiver, args)
        raise SJavaRuntimeError(f"unhandled builtin {namespace}.{name}", call)

    def _compile_buffer_method(
        self, call: ast.Call, name: str, receiver: ExprFn, args: list[ExprFn]
    ) -> ExprFn:
        null_error = self._null_error
        bounds_error = self._bounds_error
        if name == "insert":
            arg0 = args[0]

            def run_insert(frame: _Frame) -> object:
                buf = receiver(frame)
                value = arg0(frame)
                if buf is None:
                    null_error("insert on null buffer", call)
                    return None
                buf.insert(value)
                return None

            return run_insert
        if name == "get":
            arg0 = args[0]

            def run_get(frame: _Frame) -> object:
                buf = receiver(frame)
                if buf is None:
                    null_error("get on null buffer", call)
                    return 0
                i = arg0(frame)
                if not 0 <= i < buf.size():
                    bounds_error(i, buf.size(), call)
                    return buf.default
                return buf.get(i)

            return run_get

        def run_size(frame: _Frame) -> object:
            buf = receiver(frame)
            if buf is None:
                null_error("size on null buffer", call)
                return 0
            return buf.size()

        return run_size

    def _compile_user_call(self, call: ast.Call, target: MethodCall) -> ExprFn:
        args = [self.compile_expr(arg) for arg in call.args]
        call_method = self.call_method
        receiver_class = target.receiver_class
        method_name = target.decl.name
        if target.decl.is_static:
            def run_static(frame: _Frame) -> object:
                return call_method(
                    None, receiver_class, method_name, [a(frame) for a in args]
                )

            return run_static
        if call.receiver is None or (
            isinstance(call.receiver, ast.VarRef)
            and call.receiver.name in self.info.classes
        ):
            def run_implicit(frame: _Frame) -> object:
                return call_method(
                    frame.this, receiver_class, method_name,
                    [a(frame) for a in args],
                )

            return run_implicit
        receiver = self.compile_expr(call.receiver)
        null_error = self._null_error
        ignore = self.options.ignore_errors
        instantiate = self.instantiate

        def run_call(frame: _Frame) -> object:
            obj = receiver(frame)
            if obj is None:
                null_error(f"call of {method_name!r} on null receiver", call)
                if not ignore:
                    return None
                obj = instantiate(receiver_class)
            return call_method(
                obj, receiver_class, method_name, [a(frame) for a in args]
            )

        return run_call
