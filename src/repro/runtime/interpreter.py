"""AST interpreter for sjava programs, with crash-avoidance semantics.

Chapter 4.4 of the paper: checking self-stabilization only helps if the
program keeps running long enough to stabilize, so the SJava compiler can
generate code that logs and *ignores* uncaught errors, giving error cases
defined behavior (a null dereference yields a default value, a call on a
null receiver executes the statically chosen target, ...).  This
interpreter implements both modes:

* strict mode (``ignore_errors=False``) raises
  :class:`SJavaRuntimeError` like an uncaught Java exception would crash;
* crash-avoidance mode (``ignore_errors=True``) logs the error and
  substitutes defined behavior, and bounds possibly-runaway inner loops
  (the generated ``@MAXLOOP`` enforcement).

The interpreter also hosts the fault-injection hook used by the
Section 6.2 experiments: an injector sees every value produced by a
memory or arithmetic operation and may replace it.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.lang import ast
from repro.obs.events import get_event_log
from repro.obs.profile import get_profiler
from repro.lang.symtab import BuiltinCall, MethodCall, ProgramInfo
from repro.runtime.devices import DeviceBus, InputExhausted, OutputSink
from repro.runtime.values import (
    ArrayVal,
    BufferVal,
    ObjectVal,
    default_value,
    java_int_div,
    java_int_rem,
)


def state_digest(values: Sequence[object]) -> str:
    """Compact, stable digest of one iteration's observable state (the
    output samples it emitted) — 8 hex chars of CRC-32 over the
    canonical repr.  Two runs diverge exactly when their digests do,
    which is what the convergence telemetry compares per iteration."""
    return f"{zlib.crc32(repr(list(values)).encode('utf-8')) & 0xFFFFFFFF:08x}"


class SJavaRuntimeError(Exception):
    """An uncaught runtime error (strict mode)."""

    def __init__(self, message: str, node: Optional[ast.Node] = None) -> None:
        where = f" at {node.line}:{node.col}" if node is not None else ""
        super().__init__(message + where)


class StepBudgetExceeded(Exception):
    """The run used more execution steps than ``RuntimeOptions.step_budget``.

    This is a *harness watchdog*, not program semantics: it fires in both
    strict and crash-avoidance mode, because its job is to keep a
    corrupted run (e.g. an injected fault that rewrites a loop bound)
    from hanging the process that hosts it.  Fault-injection campaigns
    record a trial that trips it as ``timeout``.
    """


@dataclass
class RuntimeOptions:
    #: Crash-avoidance mode (Section 4.4).
    ignore_errors: bool = False
    #: Cap on main event-loop iterations (a harness bound, not semantics).
    max_iterations: int = 10_000
    #: Bound applied to inner loops: enforced silently in crash-avoidance
    #: mode (generated @MAXLOOP code), raised on in strict mode so runaway
    #: loops surface instead of hanging the host.
    inner_loop_bound: int = 1_000_000
    #: Watchdog: total executed steps (memory/arithmetic operations plus
    #: loop iterations) allowed for the whole run; ``None`` disables it.
    #: Exceeding the budget raises :class:`StepBudgetExceeded` in *every*
    #: mode — see that class for why.
    step_budget: Optional[int] = None


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class Interpreter:
    def __init__(
        self,
        info: ProgramInfo,
        device: DeviceBus,
        options: Optional[RuntimeOptions] = None,
        injector: Optional[object] = None,
    ) -> None:
        self.info = info
        self.device = device
        self.options = options or RuntimeOptions()
        self.injector = injector
        self.sink = OutputSink()
        self.error_log: list[str] = []
        self.iteration = 0
        #: Executed steps, charged by :meth:`_charge` (the watchdog meter).
        self.steps = 0
        #: sink length at the end of each completed event-loop iteration
        self.iteration_marks: list[int] = []
        self._statics: dict[tuple[str, str], object] = {}
        self._statics_ready: set[str] = set()

    # -- public API ----------------------------------------------------------

    def run(
        self,
        class_name: Optional[str] = None,
        method_name: Optional[str] = None,
        args: Optional[list[object]] = None,
    ) -> list[object]:
        """Instantiate ``class_name`` and invoke ``method_name`` (defaults:
        the class/method containing the SSJAVA event loop).  Returns the
        outputs emitted through SJ.broadcast/print/emit."""
        loop = self.info.event_loop
        if class_name is None or method_name is None:
            if loop is None:
                raise SJavaRuntimeError("program has no SSJAVA event loop")
            class_name = class_name or loop.class_name
            method_name = method_name or loop.method.name
        instance = self.instantiate(class_name)
        self.call_method(instance, class_name, method_name, args or [])
        return self.sink.values

    def outputs_by_iteration(self) -> list[list[object]]:
        """Outputs grouped by the event-loop iteration that emitted them."""
        groups: list[list[object]] = []
        start = 0
        for mark in self.iteration_marks:
            groups.append(self.sink.values[start:mark])
            start = mark
        return groups

    def iteration_digests(self) -> list[str]:
        """Per-iteration :func:`state_digest` of the observable state —
        the convergence-telemetry series the stabilization experiments
        compare between a reference and a faulty run."""
        return [state_digest(group) for group in self.outputs_by_iteration()]

    def _iteration_event(self) -> None:
        """Emit a per-iteration ``runtime.iteration`` debug event.

        Called once per completed event-loop iteration by both
        execution backends.  The digest is only computed when a debug-
        level event log is installed, so the disabled path costs one
        global read and a method call.
        """
        events = get_event_log()
        if not events.enabled or not events.enabled_for("debug"):
            return
        mark = self.iteration_marks[-1]
        start = self.iteration_marks[-2] if len(self.iteration_marks) > 1 else 0
        events.emit(
            "runtime.iteration",
            level="debug",
            iteration=self.iteration - 1,
            outputs=mark - start,
            digest=state_digest(self.sink.values[start:mark]),
        )

    # -- objects ----------------------------------------------------------------

    def instantiate(self, class_name: str) -> ObjectVal:
        obj = ObjectVal(class_name)
        chain = list(self.info.ancestry(class_name))
        for owner in reversed(chain):
            for fld in self.info.classes[owner].fields:
                if fld.is_static:
                    continue
                if fld.init is not None:
                    frame = _Frame(this=obj)
                    obj.fields[fld.name] = self.eval(fld.init, frame)
                else:
                    obj.fields[fld.name] = default_value(fld.decl_type)
        return obj

    def _static_value(self, owner: str, field_name: str) -> object:
        if owner not in self._statics_ready:
            self._statics_ready.add(owner)
            for fld in self.info.classes[owner].fields:
                if not fld.is_static:
                    continue
                if fld.init is not None:
                    self._statics[(owner, fld.name)] = self.eval(
                        fld.init, _Frame(this=None)
                    )
                else:
                    self._statics[(owner, fld.name)] = default_value(fld.decl_type)
        return self._statics[(owner, field_name)]

    # -- calls -----------------------------------------------------------------

    def call_method(
        self,
        receiver: Optional[ObjectVal],
        static_class: str,
        method_name: str,
        args: list[object],
    ) -> object:
        dispatch_class = (
            receiver.class_name if isinstance(receiver, ObjectVal) else static_class
        )
        found = self.info.find_method(dispatch_class, method_name)
        if found is None:
            found = self.info.find_method(static_class, method_name)
        if found is None:
            raise SJavaRuntimeError(
                f"no method {method_name!r} on class {dispatch_class!r}"
            )
        owner, decl = found
        frame = _Frame(this=receiver)
        for param, arg in zip(decl.params, args):
            frame.vars[param.name] = arg
        try:
            self.exec_stmt(decl.body, frame)
        except _ReturnSignal as signal:
            return signal.value
        return None

    # -- statements ----------------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, frame: "_Frame") -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                self.exec_stmt(child, frame)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                value = self._inject(self.eval(stmt.init, frame), stmt)
            else:
                value = default_value(stmt.decl_type)
            frame.vars[stmt.name] = value
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, frame)
        elif isinstance(stmt, ast.If):
            if self._truthy(self.eval(stmt.cond, frame)):
                self.exec_stmt(stmt.then_body, frame)
            elif stmt.else_body is not None:
                self.exec_stmt(stmt.else_body, frame)
        elif isinstance(stmt, ast.While):
            if stmt.label in ("SSJAVA", "SJAVA"):
                self._exec_event_loop(stmt, frame)
            else:
                self._exec_inner_loop(stmt, frame)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, ast.Return):
            value = None if stmt.value is None else self.eval(stmt.value, frame)
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, frame)
        else:  # pragma: no cover - defensive
            raise SJavaRuntimeError(f"unhandled statement {type(stmt).__name__}", stmt)

    def _exec_event_loop(self, stmt: ast.While, frame: "_Frame") -> None:
        from repro.obs.resources import get_resource_monitor

        with get_profiler().section("interpreter.step"):
            with get_resource_monitor().section("interpreter.step"):
                self._exec_event_loop_body(stmt, frame)

    def _exec_event_loop_body(
        self, stmt: ast.While, frame: "_Frame"
    ) -> None:
        begin_device_iteration = getattr(self.device, "begin_iteration", None)
        while self.iteration < self.options.max_iterations:
            self._charge()
            if not self._truthy(self.eval(stmt.cond, frame)):
                break
            if begin_device_iteration is not None:
                begin_device_iteration(self.iteration)
            if self.injector is not None:
                self.injector.begin_iteration(self.iteration)
            try:
                self.exec_stmt(stmt.body, frame)
            except InputExhausted:
                break
            except _BreakSignal:
                self.iteration += 1
                self.iteration_marks.append(len(self.sink.values))
                self._iteration_event()
                break
            except _ContinueSignal:
                pass
            self.iteration += 1
            self.iteration_marks.append(len(self.sink.values))
            self._iteration_event()

    def _loop_bound(self, annotations: list[ast.Annotation]) -> int:
        maxloop = ast.annotation_named(annotations, "MAXLOOP")
        if maxloop is not None and isinstance(maxloop.value, int):
            return maxloop.value
        return self.options.inner_loop_bound

    def _exceed_bound(self, node: ast.Node) -> None:
        if self.options.ignore_errors:
            self._log(f"loop bound exceeded at {node.line}:{node.col}; bounded")
        else:
            raise SJavaRuntimeError("inner loop exceeded its iteration bound", node)

    def _exec_inner_loop(self, stmt: ast.While, frame: "_Frame") -> None:
        bound = self._loop_bound(stmt.annotations)
        count = 0
        while self._truthy(self.eval(stmt.cond, frame)):
            self._charge()
            if count >= bound:
                self._exceed_bound(stmt)
                break
            count += 1
            try:
                self.exec_stmt(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_for(self, stmt: ast.For, frame: "_Frame") -> None:
        bound = self._loop_bound(stmt.annotations)
        if stmt.init is not None:
            self.exec_stmt(stmt.init, frame)
        count = 0
        while stmt.cond is None or self._truthy(self.eval(stmt.cond, frame)):
            self._charge()
            if count >= bound:
                self._exceed_bound(stmt)
                break
            count += 1
            try:
                self.exec_stmt(stmt.body, frame)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if stmt.update is not None:
                self.exec_stmt(stmt.update, frame)

    def _exec_assign(self, stmt: ast.Assign, frame: "_Frame") -> None:
        value = self.eval(stmt.value, frame)
        if stmt.op != "=":
            current = self.eval(stmt.target, frame)
            value = self._binary_op(stmt.op[0], current, value, stmt)
        value = self._inject(value, stmt)
        target = stmt.target
        if isinstance(target, ast.VarRef):
            frame.vars[target.name] = value
        elif isinstance(target, ast.FieldAccess):
            obj = self.eval(target.obj, frame)
            if obj is None:
                self._null_error("field store on null reference", target)
                return
            obj.fields[target.field_name] = value
        elif isinstance(target, ast.ArrayAccess):
            array = self.eval(target.array, frame)
            index = self.eval(target.index, frame)
            if array is None:
                self._null_error("array store on null reference", target)
                return
            if not 0 <= index < len(array.items):
                self._bounds_error(index, len(array.items), target)
                return
            array.items[index] = value
        else:  # pragma: no cover - parser prevents
            raise SJavaRuntimeError("invalid assignment target", stmt)

    # -- expressions ------------------------------------------------------------------

    def eval(self, expr: ast.Expr, frame: "_Frame") -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.VarRef):
            if expr.name in frame.vars:
                return frame.vars[expr.name]
            raise SJavaRuntimeError(f"unbound variable {expr.name!r}", expr)
        if isinstance(expr, ast.ThisRef):
            return frame.this
        if isinstance(expr, ast.FieldAccess):
            return self._eval_field_access(expr, frame)
        if isinstance(expr, ast.ArrayAccess):
            array = self.eval(expr.array, frame)
            index = self.eval(expr.index, frame)
            if array is None:
                self._null_error("array read on null reference", expr)
                return 0
            if not 0 <= index < len(array.items):
                self._bounds_error(index, len(array.items), expr)
                return array.default
            return array.items[index]
        if isinstance(expr, ast.ArrayLength):
            array = self.eval(expr.array, frame)
            if array is None:
                self._null_error("length of null array", expr)
                return 0
            return len(array.items)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, frame)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, frame)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, frame)
        if isinstance(expr, ast.New):
            if expr.class_name in ("OrderedBuffer", "OrderedIntBuffer"):
                capacity = self.eval(expr.args[0], frame)
                default = 0.0 if expr.class_name == "OrderedBuffer" else 0
                return BufferVal(max(0, capacity), default)
            return self.instantiate(expr.class_name)
        if isinstance(expr, ast.NewArray):
            size = self.eval(expr.size, frame)
            default = default_value(expr.element)
            return ArrayVal(max(0, size), default)
        raise SJavaRuntimeError(f"unhandled expression {type(expr).__name__}", expr)

    def _eval_field_access(self, expr: ast.FieldAccess, frame: "_Frame") -> object:
        resolved = self.info.field_refs.get(expr.uid)
        if resolved is not None and resolved[1].is_static:
            return self._static_value(resolved[0], expr.field_name)
        obj = self.eval(expr.obj, frame)
        if obj is None:
            self._null_error("field read on null reference", expr)
            if resolved is not None:
                return default_value(resolved[1].decl_type)
            return None
        return obj.fields[expr.field_name]

    def _eval_unary(self, expr: ast.Unary, frame: "_Frame") -> object:
        value = self.eval(expr.operand, frame)
        if expr.op == "-":
            return -value
        if expr.op == "!":
            return not value
        if expr.op.startswith("cast:"):
            target = expr.op.split(":", 1)[1]
            if target == "int":
                return int(value)
            if target == "float":
                return float(value)
        raise SJavaRuntimeError(f"unknown unary operator {expr.op!r}", expr)

    def _eval_binary(self, expr: ast.Binary, frame: "_Frame") -> object:
        op = expr.op
        if op == "&&":
            return self._truthy(self.eval(expr.left, frame)) and self._truthy(
                self.eval(expr.right, frame)
            )
        if op == "||":
            return self._truthy(self.eval(expr.left, frame)) or self._truthy(
                self.eval(expr.right, frame)
            )
        left = self.eval(expr.left, frame)
        right = self.eval(expr.right, frame)
        if op in ("+", "-", "*", "/", "%"):
            result = self._binary_op(op, left, right, expr)
            return self._inject(result, expr)
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return left is right if _both_refs(left, right) else left == right
        if op == "!=":
            return left is not right if _both_refs(left, right) else left != right
        raise SJavaRuntimeError(f"unknown binary operator {op!r}", expr)

    def _binary_op(self, op: str, left: object, right: object, node: ast.Node):
        if op == "+" and (isinstance(left, str) or isinstance(right, str)):
            return _to_display(left) + _to_display(right)
        if op == "/":
            if right == 0:
                self._arith_error("division by zero", node)
                return 0 if isinstance(left, int) and isinstance(right, int) else 0.0
            if isinstance(left, int) and isinstance(right, int):
                return java_int_div(left, right)
            return left / right
        if op == "%":
            if right == 0:
                self._arith_error("remainder by zero", node)
                return 0 if isinstance(left, int) and isinstance(right, int) else 0.0
            if isinstance(left, int) and isinstance(right, int):
                return java_int_rem(left, right)
            return math.fmod(left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        raise SJavaRuntimeError(f"unknown arithmetic operator {op!r}", node)

    # -- calls --------------------------------------------------------------------------

    def _eval_call(self, call: ast.Call, frame: "_Frame") -> object:
        target = self.info.call_targets.get(call.uid)
        if isinstance(target, BuiltinCall):
            return self._eval_builtin(call, target, frame)
        if isinstance(target, MethodCall):
            if target.decl.is_static:
                receiver: Optional[ObjectVal] = None
            elif call.receiver is None or (
                isinstance(call.receiver, ast.VarRef)
                and call.receiver.name in self.info.classes
            ):
                receiver = frame.this
            else:
                receiver = self.eval(call.receiver, frame)
                if receiver is None:
                    self._null_error(
                        f"call of {call.method!r} on null receiver", call
                    )
                    if not self.options.ignore_errors:
                        return None
                    # Crash avoidance: execute the statically chosen target
                    # with a fresh default receiver so stabilizing side
                    # effects inside the callee still run.
                    receiver = self.instantiate(target.receiver_class)
            args = [self.eval(arg, frame) for arg in call.args]
            return self.call_method(
                receiver, target.receiver_class, target.decl.name, args
            )
        raise SJavaRuntimeError(f"unresolved call {call.method!r}", call)

    def _eval_builtin(
        self, call: ast.Call, target: BuiltinCall, frame: "_Frame"
    ) -> object:
        namespace = target.namespace
        name = target.sig.name
        if namespace == "Device":
            return self.device.read(name)
        if namespace == "SJ":
            if target.sig.kind == "output":
                self.sink.emit(self.eval(call.args[0], frame))
                return None
            if name == "toStr":
                return _to_display(self.eval(call.args[0], frame))
            if name == "fill":
                array = self.eval(call.args[0], frame)
                value = self.eval(call.args[1], frame)
                if array is None:
                    self._null_error("SJ.fill on null array", call)
                    return None
                array.items[:] = [value] * len(array.items)
                return None
        if namespace == "Math":
            args = [self.eval(arg, frame) for arg in call.args]
            return self._eval_math(name, args, call)
        if namespace in ("OrderedBuffer", "OrderedIntBuffer"):
            receiver = self.eval(call.receiver, frame)
            if receiver is None:
                self._null_error(f"{name} on null buffer", call)
                return 0 if name in ("get", "size") else None
            args = [self.eval(arg, frame) for arg in call.args]
            if name == "insert":
                receiver.insert(args[0])
                return None
            if name == "get":
                index = args[0]
                if not 0 <= index < receiver.size():
                    self._bounds_error(index, receiver.size(), call)
                    return receiver.default
                return receiver.get(index)
            if name == "size":
                return receiver.size()
        raise SJavaRuntimeError(f"unhandled builtin {namespace}.{name}", call)

    def _eval_math(self, name: str, args: list, node: ast.Node) -> object:
        try:
            if name == "abs":
                return abs(args[0])
            if name == "min":
                return min(args)
            if name == "max":
                return max(args)
            if name == "sqrt":
                if args[0] < 0:
                    self._arith_error("sqrt of negative value", node)
                    return 0.0
                return math.sqrt(args[0])
            if name == "sin":
                return math.sin(args[0])
            if name == "cos":
                return math.cos(args[0])
            if name == "exp":
                return math.exp(args[0])
            if name == "pow":
                return math.pow(args[0], args[1])
            if name == "floor":
                return math.floor(args[0])
            if name == "round":
                return int(round(args[0]))
        except (OverflowError, ValueError) as exc:
            self._arith_error(str(exc), node)
            return 0.0
        raise SJavaRuntimeError(f"unknown Math function {name!r}", node)

    # -- error handling (crash avoidance) ---------------------------------------------

    def _log(self, message: str) -> None:
        self.error_log.append(message)

    def _null_error(self, message: str, node: ast.Node) -> None:
        if self.options.ignore_errors:
            self._log(f"{message} at {node.line}:{node.col}; ignored")
        else:
            raise SJavaRuntimeError(message, node)

    def _bounds_error(self, index: int, length: int, node: ast.Node) -> None:
        message = f"index {index} out of bounds for length {length}"
        if self.options.ignore_errors:
            self._log(f"{message} at {node.line}:{node.col}; ignored")
        else:
            raise SJavaRuntimeError(message, node)

    def _arith_error(self, message: str, node: ast.Node) -> None:
        if self.options.ignore_errors:
            self._log(f"{message} at {node.line}:{node.col}; defined result")
        else:
            raise SJavaRuntimeError(message, node)

    # -- watchdog -------------------------------------------------------------------------

    def _charge(self) -> None:
        """Meter one execution step against the optional step budget."""
        self.steps += 1
        budget = self.options.step_budget
        if budget is not None and self.steps > budget:
            raise StepBudgetExceeded(
                f"step budget of {budget} execution steps exhausted"
            )

    # -- injection ------------------------------------------------------------------------

    def _inject(self, value: object, node: ast.Node) -> object:
        self._charge()
        if self.injector is None:
            return value
        return self.injector.site(value, node)

    @staticmethod
    def _truthy(value: object) -> bool:
        return bool(value)


def _both_refs(left: object, right: object) -> bool:
    return isinstance(left, (ObjectVal, ArrayVal, BufferVal)) and isinstance(
        right, (ObjectVal, ArrayVal, BufferVal)
    )


def _to_display(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


class _Frame:
    __slots__ = ("this", "vars")

    def __init__(self, this: Optional[ObjectVal]) -> None:
        self.this = this
        self.vars: dict[str, object] = {}


InjectorCallback = Callable[[object, ast.Node], object]
