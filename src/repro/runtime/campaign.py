"""Fault-injection campaigns: paper-scale corruption sweeps that survive
the faults they provoke.

``repro inject`` runs a handful of uniformly sampled trials serially in
one process.  The paper's empirical claim (Section 6.2) — checked
programs recover from *any* injected corruption within a bounded number
of iterations — needs sweeps that cover corruption sites exhaustively
(or stratified across the site space) for every registered app, which
means hours of trials and therefore infrastructure that tolerates
interruption:

* trials are grouped into **shards** and fanned out over the service
  layer's :class:`~repro.service.pool.ResilientPool` (per-shard
  wall-clock timeouts, worker-crash detection, pool rebuild, capped
  exponential backoff; an unrecoverable shard is recorded as
  ``infra-failed``, never dropped);
* each injected run carries a **step-budget watchdog**
  (:class:`~repro.runtime.interpreter.StepBudgetExceeded`): a corrupted
  loop bound yields a ``timeout`` trial instead of a hung worker;
* campaign state is **checkpointed** to a JSON manifest after every
  completed shard, so a campaign killed mid-run (driver or worker)
  resumes exactly where it stopped and produces statistics identical to
  an uninterrupted run.

The aggregate report is a versioned ``campaign`` payload emitted through
:mod:`repro.service.protocol`; the schema lives in
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.apps import all_app_names, resolve_experiment
from repro.chaos.injector import (
    ChaosConfig,
    ChaosInjector,
    NullChaosInjector,
    chaos_recovery,
    get_chaos,
)
from repro.obs import get_tracer, global_registry
from repro.obs.events import get_event_log
from repro.obs.propagate import shard_trace_payload, worker_traced
from repro.runtime.stabilization import InjectionTrial
from repro.service.pool import ResilientPool, TaskFailure

#: Bump when the manifest or report layout changes.
CAMPAIGN_SCHEMA = 1

#: Trial verdicts.
MASKED = "masked"
RECOVERED = "recovered"
DIVERGED = "diverged"
TIMEOUT = "timeout"
NOT_INJECTED = "not-injected"

MODES = ("exhaustive", "stratified", "uniform")


class CampaignError(RuntimeError):
    """A campaign could not be planned or resumed."""


# ---------------------------------------------------------------------------
# Configuration and planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines a sweep.  Two configs with equal
    fingerprints plan byte-identical shard lists, which is what makes a
    checkpoint safely resumable."""

    apps: tuple[str, ...]
    mode: str = "stratified"
    #: Per-app trial count (stratified / uniform modes).
    trials: int = 64
    #: Stratum count for stratified mode.
    strata: int = 8
    #: Cap for exhaustive mode; thinned evenly, never a silent prefix.
    max_sites: Optional[int] = None
    #: Event-loop iterations per run (None: the app's registered default).
    iterations: Optional[int] = None
    burst: int = 1
    seed: int = 0
    #: Trials per shard — the checkpoint and retry granularity.
    shard_size: int = 16
    #: Watchdog: absolute step cap per injected run, or a multiple of
    #: the app's clean-run step count (the default).
    step_budget: Optional[int] = None
    step_budget_factor: Optional[int] = 64
    #: Recovery-histogram bin width, in output samples.
    histogram_bin: int = 8

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise CampaignError(f"unknown campaign mode {self.mode!r}")
        unknown = [a for a in self.apps if a not in all_app_names()]
        if unknown:
            raise CampaignError(
                f"unknown apps {unknown}; registered: {list(all_app_names())}"
            )
        if not self.apps:
            raise CampaignError("campaign needs at least one app")

    def fingerprint(self) -> str:
        """Content address of the sweep this config plans."""
        blob = json.dumps(
            {"schema": CAMPAIGN_SCHEMA, **self.to_dict()}, sort_keys=True
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "apps": list(self.apps),
            "mode": self.mode,
            "trials": self.trials,
            "strata": self.strata,
            "max_sites": self.max_sites,
            "iterations": self.iterations,
            "burst": self.burst,
            "seed": self.seed,
            "shard_size": self.shard_size,
            "step_budget": self.step_budget,
            "step_budget_factor": self.step_budget_factor,
            "histogram_bin": self.histogram_bin,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        return cls(**{**data, "apps": tuple(data["apps"])})


def plan_sites(
    mode: str,
    total: int,
    *,
    trials: int,
    strata: int,
    max_sites: Optional[int],
    rng: random.Random,
) -> list[int]:
    """The corruption sites one app's sweep will hit, in sweep order."""
    total = max(1, total)
    if mode == "exhaustive":
        sites = list(range(total))
        if max_sites is not None and len(sites) > max_sites:
            stride = len(sites) / max_sites
            sites = [sites[int(i * stride)] for i in range(max_sites)]
        return sites
    if mode == "stratified":
        # Sample without replacement inside each equal-width slice of
        # the site space, so every pipeline stage is exercised even when
        # one stage dominates the site count (uniform sampling misses
        # small stages entirely).
        per_stratum = math.ceil(trials / strata)
        sites: list[int] = []
        for k in range(strata):
            lo = k * total // strata
            hi = (k + 1) * total // strata
            if hi <= lo:
                continue
            take = min(per_stratum, hi - lo)
            sites.extend(sorted(rng.sample(range(lo, hi), take)))
        return sites
    if mode == "uniform":
        return [rng.randrange(total) for _ in range(trials)]
    raise CampaignError(f"unknown campaign mode {mode!r}")


@dataclass(frozen=True)
class Shard:
    """One unit of fan-out, retry and checkpointing."""

    shard_id: str
    app: str
    sites: tuple[int, ...]
    seeds: tuple[int, ...]

    def payload(self, config: CampaignConfig) -> dict:
        """The plain-dict form shipped to a worker process."""
        return {
            "shard_id": self.shard_id,
            "app": self.app,
            "sites": list(self.sites),
            "seeds": list(self.seeds),
            "iterations": config.iterations,
            "burst": config.burst,
            "step_budget": config.step_budget,
            "step_budget_factor": config.step_budget_factor,
        }


def plan_shards(
    config: CampaignConfig, site_totals: dict[str, int]
) -> list[Shard]:
    """Deterministic shard list for a config + per-app site totals."""
    shards: list[Shard] = []
    for app in config.apps:
        rng = random.Random(f"{config.seed}:{app}")
        sites = plan_sites(
            config.mode,
            site_totals[app],
            trials=config.trials,
            strata=config.strata,
            max_sites=config.max_sites,
            rng=rng,
        )
        seeds = [config.seed + index for index in range(len(sites))]
        for chunk_index in range(0, len(sites), config.shard_size):
            chunk = sites[chunk_index:chunk_index + config.shard_size]
            chunk_seeds = seeds[chunk_index:chunk_index + config.shard_size]
            shards.append(Shard(
                shard_id=f"{app}:{chunk_index // config.shard_size:04d}",
                app=app,
                sites=tuple(chunk),
                seeds=tuple(chunk_seeds),
            ))
    return shards


# ---------------------------------------------------------------------------
# The worker (module-level: must be picklable)
# ---------------------------------------------------------------------------


def verdict_of(trial: InjectionTrial) -> str:
    if trial.timed_out:
        return TIMEOUT
    if trial.injection_iteration is None:
        return NOT_INJECTED
    if trial.diverged:
        return DIVERGED
    if trial.recovery_samples is not None:
        return RECOVERED
    return MASKED


def trial_record(app: str, trial: InjectionTrial) -> dict:
    record = {
        "app": app,
        "site": trial.target_step,
        "verdict": verdict_of(trial),
        "injection_iteration": trial.injection_iteration,
        "recovery_samples": trial.recovery_samples,
        "recovery_iterations": trial.recovery_iterations,
        "error_log_size": trial.error_log_size,
    }
    # Convergence telemetry is additive: old manifests (and readers of
    # them) simply lack the key, which is why consumers go through
    # trial_telemetry() instead of indexing it directly.
    if trial.divergence is not None or trial.convergence is not None:
        record["telemetry"] = {
            "divergence": trial.divergence,
            "convergence": trial.convergence,
        }
    # Distributed trials (repro.dist) additionally carry the injected
    # node and per-node fabric telemetry — additive for the same reason.
    if trial.node is not None:
        record["node"] = trial.node
        if trial.node_divergence is not None or trial.node_digests is not None:
            record.setdefault("telemetry", {})
            record["telemetry"]["node_divergence"] = trial.node_divergence
            record["telemetry"]["node_digests"] = trial.node_digests
    return record


def trial_telemetry(trial: dict) -> dict:
    """Convergence telemetry of a checkpointed trial record, tolerating
    manifests written before telemetry existed (both keys default to
    None)."""
    telemetry = trial.get("telemetry") or {}
    return {
        "divergence": telemetry.get("divergence"),
        "convergence": telemetry.get("convergence"),
        "node_divergence": telemetry.get("node_divergence"),
        "node_digests": telemetry.get("node_digests"),
    }


def run_shard(payload: dict) -> dict:
    """Run one shard of injection trials.  Ships to pool workers, so it
    takes and returns plain dicts only.  ``run_seconds`` is measured on
    the worker side, so the driver can split a shard's settle latency
    into execution time and queue wait.

    When the payload carries a ``chaos`` config (``repro chaos``), the
    worker rebuilds the injector on its side of the pickle boundary and
    passes through its fault probes: a hang before the trials start, a
    SIGKILL mid-shard.  The injector's cross-process ledger guarantees
    each planned fault fires on the first delivery only, so the retry
    of a killed shard completes — and, trials being pure functions of
    ``(app, site, seed, …)``, completes with identical records.

    When the payload carries a ``trace`` context (``--trace``), the
    shard runs under :func:`repro.obs.propagate.worker_traced`: a
    process-wide worker tracer writes ``worker-<pid>.trace.jsonl`` next
    to the driver's trace and this shard's spans — ``worker.shard``
    plus every trial span nested inside — stay causally linked to the
    driver's ``campaign_drive`` span across the pickle boundary.
    """
    start = time.perf_counter()
    chaos_cfg = payload.get("chaos")
    chaos: ChaosInjector | NullChaosInjector = (
        ChaosInjector(ChaosConfig.from_dict(chaos_cfg))
        if chaos_cfg else NullChaosInjector()
    )
    shard_id = payload["shard_id"]
    chaos.hang_point("worker.shard", shard_id)
    with worker_traced(
        payload.get("trace"), shard_id=shard_id, app=payload["app"]
    ) as shard_span:
        experiment = resolve_experiment(
            payload["app"],
            payload.get("iterations"),
            step_budget=payload.get("step_budget"),
            step_budget_factor=payload.get("step_budget_factor"),
        )
        crash_after = len(payload["sites"]) // 2
        trials = []
        for done, (site, seed) in enumerate(
            zip(payload["sites"], payload["seeds"])
        ):
            trials.append(trial_record(
                payload["app"],
                experiment.trial_at(
                    site, seed=seed, burst=payload.get("burst", 1)
                ),
            ))
            if done == crash_after:
                # Mid-shard, after real work: the kill a preempted/OOMed
                # worker takes, with trial results already computed and
                # lost.
                chaos.crash_point("worker.shard", shard_id)
        if shard_span is not None:
            shard_span.count("trials", len(trials))
    from repro.obs.resources import peak_rss_bytes

    return {
        "shard_id": shard_id,
        "trials": trials,
        "run_seconds": time.perf_counter() - start,
        "pid": os.getpid(),
        # Worker-side memory accounting: the worker process's lifetime
        # peak RSS at shard completion (one getrusage call), so the
        # driver can spot the shard that blew the memory budget.
        "peak_rss_bytes": peak_rss_bytes(),
    }


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


def _percentile(values: list[int], percent: float) -> Optional[int]:
    """Nearest-rank percentile; None for an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(percent / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _rate(count: int, denominator: int) -> float:
    return round(count / denominator, 4) if denominator else 0.0


def aggregate_app(
    app: str, sites_total: int, trials: list[dict], histogram_bin: int
) -> dict:
    counts = {v: 0 for v in (MASKED, RECOVERED, DIVERGED, TIMEOUT, NOT_INJECTED)}
    histogram: dict[int, int] = {}
    iterations: list[int] = []
    for trial in trials:
        counts[trial["verdict"]] += 1
        if trial["recovery_samples"] is not None:
            bucket = (trial["recovery_samples"] // histogram_bin) * histogram_bin
            histogram[bucket] = histogram.get(bucket, 0) + 1
        if trial["recovery_iterations"] is not None:
            iterations.append(trial["recovery_iterations"])
    injected = len(trials) - counts[NOT_INJECTED]
    return {
        "app": app,
        "sites_total": sites_total,
        "trials": len(trials),
        "injected": injected,
        "masked": counts[MASKED],
        "recovered": counts[RECOVERED],
        "diverged": counts[DIVERGED],
        "timeout": counts[TIMEOUT],
        "not_injected": counts[NOT_INJECTED],
        "mask_rate": _rate(counts[MASKED], injected),
        "divergence_rate": _rate(counts[DIVERGED], injected),
        "timeout_rate": _rate(counts[TIMEOUT], injected),
        "recovery_histogram": {
            str(bucket): count for bucket, count in sorted(histogram.items())
        },
        "recovery_iterations_p50": _percentile(iterations, 50),
        "recovery_iterations_p95": _percentile(iterations, 95),
    }


def aggregate_report(
    config: CampaignConfig,
    site_totals: dict[str, int],
    planned: Sequence[Shard],
    shard_records: dict[str, dict],
) -> dict:
    """The campaign summary (``protocol.campaign_payload`` wraps it)."""
    completed = [
        s for s in planned
        if shard_records.get(s.shard_id, {}).get("status") == "done"
    ]
    failures = [
        {"shard_id": s.shard_id, **{
            k: shard_records[s.shard_id][k]
            for k in ("reason", "message", "attempts")
        }}
        for s in planned
        if shard_records.get(s.shard_id, {}).get("status") == "infra-failed"
    ]
    trials_by_app: dict[str, list[dict]] = {app: [] for app in config.apps}
    for shard in completed:
        for trial in shard_records[shard.shard_id]["trials"]:
            trials_by_app[trial["app"]].append(trial)
    return {
        "schema": CAMPAIGN_SCHEMA,
        "mode": config.mode,
        "seed": config.seed,
        "burst": config.burst,
        "complete": len(completed) + len(failures) == len(planned),
        "shards": {
            "planned": len(planned),
            "completed": len(completed),
            "infra_failed": len(failures),
        },
        "infra_failures": failures,
        "apps": [
            aggregate_app(
                app, site_totals[app], trials_by_app[app], config.histogram_bin
            )
            for app in config.apps
        ],
    }


# ---------------------------------------------------------------------------
# The runner: checkpointing, resume, fan-out
# ---------------------------------------------------------------------------


@dataclass
class CampaignRunner:
    """Drives one campaign to completion, surviving interruptions.

    The manifest at ``checkpoint_path`` (optional) is rewritten
    atomically after every settled shard; a rerun with the same config
    skips everything the manifest already holds.  A manifest written by
    a *different* config is refused unless ``fresh=True`` discards it.
    """

    config: CampaignConfig
    checkpoint_path: Optional[Path] = None
    max_workers: int = 1
    #: Directory pool workers write ``worker-<pid>.trace.jsonl`` files
    #: into (``<trace>.workers/``); None keeps propagation off.  Not
    #: part of :class:`CampaignConfig` — tracing must not change the
    #: fingerprint, a resumed campaign may toggle it freely.
    trace_dir: Optional[Path] = None
    shard_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 4.0
    fresh: bool = False
    progress: Optional[Callable[[str], None]] = None
    #: Stop driving after this many newly executed shards (the manifest
    #: stays valid for resume).  Lets tests and operators simulate /
    #: bound an interruption.
    stop_after_shards: Optional[int] = None
    #: Executed-this-run counter, readable after :meth:`run`.
    executed_shards: int = field(default=0, init=False)
    #: The installed chaos injector, resolved once per :meth:`run`.
    _chaos: ChaosInjector | NullChaosInjector = field(
        default_factory=NullChaosInjector, init=False
    )
    #: Whether the last checkpoint write was torn (by injection); the
    #: next good save reports the self-heal.
    _torn: bool = field(default=False, init=False)

    def run(self) -> dict:
        self._chaos = get_chaos()
        manifest = self._load_manifest()
        site_totals = manifest.get("site_totals") if manifest else None
        if site_totals is None:
            site_totals = {
                app: resolve_experiment(
                    app, self.config.iterations
                ).total_steps()
                for app in self.config.apps
            }
        planned = plan_shards(self.config, site_totals)
        records: dict[str, dict] = dict(manifest["shards"]) if manifest else {}
        self._manifest = {
            "schema": CAMPAIGN_SCHEMA,
            "fingerprint": self.config.fingerprint(),
            "config": self.config.to_dict(),
            "site_totals": site_totals,
            "shards": records,
        }
        pending = [s for s in planned if s.shard_id not in records]
        self._note(
            f"campaign: {len(planned)} shards planned, "
            f"{len(planned) - len(pending)} already checkpointed, "
            f"{len(pending)} to run"
        )
        get_event_log().emit(
            "campaign.plan",
            level="info",
            apps=list(self.config.apps),
            mode=self.config.mode,
            planned=len(planned),
            checkpointed=len(planned) - len(pending),
            pending=len(pending),
        )
        if pending:
            self._drive(pending)
        return aggregate_report(self.config, site_totals, planned, records)

    # -- execution -------------------------------------------------------

    def _drive(self, pending: list[Shard]) -> None:
        chaos = self._chaos
        pool = ResilientPool(
            max_workers=self.max_workers,
            task_timeout=self.shard_timeout,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap,
            # Seeded jitter: the same campaign backs off identically on
            # every run, so chaos runs are reproducible end to end.
            rng=random.Random(f"backoff:{self.config.seed}"),
        )
        tracer = get_tracer()
        # Worker faults cross the pickle boundary as part of the shard
        # payload; in-process mode keeps them off (a SIGKILL or a hang
        # would take the driver down with the shard).
        worker_chaos = (
            chaos.worker_payload() if self.max_workers > 1 else None
        )
        payloads = []
        for shard in pending:
            payload = shard.payload(self.config)
            if worker_chaos is not None:
                payload["chaos"] = worker_chaos
            payloads.append(payload)
        with tracer.span("campaign_drive", shards=len(pending)) as drive:
            # Stamped inside the span so workers parent under
            # campaign_drive itself; None (tracing off) stays absent
            # from the payload, byte-identical to pre-tracing shards.
            shard_trace = shard_trace_payload(self.trace_dir)
            if shard_trace is not None:
                for payload in payloads:
                    payload["trace"] = shard_trace
            drive_start = time.perf_counter()
            for index, result in pool.run(run_shard, payloads):
                shard = pending[index]
                settled = time.perf_counter() - drive_start
                attempts = pool.attempts_of(index)
                if chaos.enabled and attempts > 1 and not isinstance(
                    result, TaskFailure
                ):
                    # A shard that needed retries under chaos recovered
                    # from a crash/hang; record the recovery action.
                    chaos_recovery(
                        "shard-retried",
                        "campaign.result",
                        shard_id=shard.shard_id,
                        attempts=attempts,
                    )
                deliveries = 1 + int(
                    chaos.duplicate_point("campaign.result", shard.shard_id)
                )
                for _ in range(deliveries):
                    self._settle(shard, result, settled, attempts, tracer)
                self.executed_shards += 1
                if (
                    self.stop_after_shards is not None
                    and self.executed_shards >= self.stop_after_shards
                ):
                    self._note("campaign: stop_after_shards reached, pausing")
                    break
            drive.count("executed_shards", self.executed_shards)

    def _settle(
        self, shard: Shard, result, settled: float, attempts: int, tracer
    ) -> None:
        """Absorb one delivery of a settled shard: metrics, events, the
        manifest record, the checkpoint.  Idempotent — a delivery for a
        shard the manifest already holds (a chaos-injected duplicate, or
        a replay after partial resume) is ignored without double-counting
        anything."""
        metrics = global_registry()
        events = get_event_log()
        if shard.shard_id in self._manifest["shards"]:
            chaos_recovery(
                "duplicate-ignored",
                "campaign.result",
                shard_id=shard.shard_id,
            )
            metrics.counter(
                "repro_campaign_duplicates_ignored",
                "duplicate shard deliveries discarded",
            ).inc()
            return
        if isinstance(result, TaskFailure):
            record = {
                "status": "infra-failed",
                "reason": result.reason,
                "message": result.message,
                "attempts": result.attempts,
            }
            metrics.counter(
                "repro_campaign_shards_infra_failed",
                "shards given up on after retries",
            ).inc()
            self._note(
                f"shard {shard.shard_id}: infra-failed "
                f"({result.reason} after {result.attempts} attempts)"
            )
            events.emit(
                "campaign.shard",
                "given up on after retries",
                level="error",
                shard_id=shard.shard_id,
                app=shard.app,
                status="infra-failed",
                reason=result.reason,
                attempts=result.attempts,
            )
        else:
            run_seconds = float(result.get("run_seconds", 0.0))
            obs = {
                "run_seconds": round(run_seconds, 6),
                "queue_wait_seconds": round(
                    max(0.0, settled - run_seconds), 6
                ),
                "attempts": attempts,
                "retries": attempts - 1,
                "timeouts": sum(
                    1 for t in result["trials"]
                    if t["verdict"] == TIMEOUT
                ),
                "pid": result.get("pid"),
                # Worker peak RSS (memory telemetry, PR 10); manifests
                # from older campaigns simply lack the key.
                "peak_rss_bytes": result.get("peak_rss_bytes"),
            }
            record = {
                "status": "done",
                "trials": result["trials"],
                "obs": obs,
            }
            with tracer.span(
                "shard", shard_id=shard.shard_id, app=shard.app
            ) as span:
                span.count("trials", len(result["trials"]))
                span.count("run_seconds", obs["run_seconds"])
                span.count(
                    "queue_wait_seconds", obs["queue_wait_seconds"]
                )
                span.count("retries", obs["retries"])
                span.count("timeouts", obs["timeouts"])
            metrics.counter(
                "repro_campaign_shards_done", "shards completed"
            ).inc()
            metrics.counter(
                "repro_campaign_shard_retries",
                "extra attempts shards needed",
            ).inc(obs["retries"])
            metrics.counter(
                "repro_campaign_trials_total", "trials executed"
            ).inc(len(result["trials"]))
            metrics.counter(
                "repro_campaign_trial_timeouts",
                "trials stopped by the step-budget watchdog",
            ).inc(obs["timeouts"])
            self._note(
                f"shard {shard.shard_id}: "
                f"{len(result['trials'])} trials"
            )
            # Workers are separate processes, so the trial.*
            # events from stabilization.py never reach the
            # driver's log; the shard summary is the driver-side
            # record of what crossed the pool boundary.
            events.emit(
                "campaign.shard",
                level="info",
                shard_id=shard.shard_id,
                app=shard.app,
                status="done",
                trials=len(result["trials"]),
                run_seconds=obs["run_seconds"],
                retries=obs["retries"],
                timeouts=obs["timeouts"],
                peak_rss_bytes=obs["peak_rss_bytes"],
            )
        self._manifest["shards"][shard.shard_id] = record
        self._save_manifest()

    # -- checkpointing ---------------------------------------------------

    def _load_manifest(self) -> Optional[dict]:
        if self.checkpoint_path is None or self.fresh:
            return None
        path = Path(self.checkpoint_path)
        if not path.exists():
            return None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            # A torn or truncated checkpoint (driver killed mid-write on
            # a filesystem without atomic rename, disk full, …) is an
            # arbitrary initial state, not a fatal one: quarantine it for
            # the post-mortem and resume from scratch — the same move
            # the disk cache makes for corrupt entries.
            quarantine = path.with_suffix(path.suffix + ".quarantined")
            try:
                os.replace(path, quarantine)
            except OSError:
                return None
            chaos_recovery(
                "manifest-quarantined",
                "manifest.checkpoint",
                path=str(path),
                quarantine=str(quarantine),
                error=str(exc),
            )
            self._note(
                f"checkpoint {path} is torn ({exc}); quarantined to "
                f"{quarantine.name} and restarting the sweep"
            )
            return None
        if manifest.get("fingerprint") != self.config.fingerprint():
            raise CampaignError(
                f"checkpoint {path} belongs to a different campaign "
                f"configuration; rerun with fresh=True / --fresh to discard it"
            )
        return manifest

    def _save_manifest(self) -> None:
        if self.checkpoint_path is None:
            return
        path = Path(self.checkpoint_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self._manifest)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        torn = self._chaos.torn_write(
            "manifest.checkpoint",
            f"{path.name}:{len(self._manifest['shards'])}",
        )
        if torn == "truncate":
            # Injected crash mid-write of the final file: half the
            # payload lands at the target (no tmp+rename discipline).
            path.write_text(blob[: len(blob) // 2], encoding="utf-8")
            self._torn = True
            return
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            # The rename below is atomic, but atomicity without
            # durability can still resurface a pre-crash (torn) file
            # after power loss; fsync before replace closes that window.
            os.fsync(handle.fileno())
        if torn == "no-rename":
            # Injected crash between write and rename: tmp is complete,
            # the target keeps its stale previous content.
            self._torn = True
            return
        os.replace(tmp, path)  # atomic: a killed driver never corrupts it
        if self._torn:
            # Each checkpoint rewrites the whole manifest, so the first
            # good save after a torn one heals the file on disk.
            chaos_recovery(
                "manifest-rewritten",
                "manifest.checkpoint",
                path=str(path),
                shards=len(self._manifest["shards"]),
            )
            self._torn = False

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def run_campaign(
    config: CampaignConfig,
    *,
    checkpoint_path: Optional[Path] = None,
    max_workers: int = 1,
    trace_dir: Optional[Path] = None,
    shard_timeout: Optional[float] = None,
    fresh: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Convenience wrapper: build a runner, drive it, return the report."""
    return CampaignRunner(
        config=config,
        checkpoint_path=checkpoint_path,
        max_workers=max_workers,
        trace_dir=trace_dir,
        shard_timeout=shard_timeout,
        fresh=fresh,
        progress=progress,
    ).run()
