"""Fault injection (Section 6.2).

The paper's compiler "generated error injection code that randomly
selects memory and mathematical operations, and replaces the original
value with a random value".  Here the interpreter calls
:meth:`ErrorInjector.site` for every value produced by an assignment or
arithmetic operation; the injector counts those sites globally and
corrupts the chosen one (or a run of consecutive ones — the eye-tracking
experiment injects errors at 10 consecutive instructions).

Only type-preserving corruptions are performed (ints→ints, floats→floats,
booleans flip); references are never corrupted, matching the paper's
error model, which assumes type safety is preserved (Section 1.1.2).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.lang import ast


class ErrorInjector:
    """Replaces the value at site ``target_step`` (and the following
    ``burst - 1`` sites) with a random same-typed value."""

    def __init__(
        self,
        target_step: int,
        seed: int = 0,
        burst: int = 1,
        int_range: tuple[int, int] = (-32768, 32767),
        float_range: tuple[float, float] = (-1000.0, 1000.0),
    ) -> None:
        self.target_step = target_step
        self.burst = burst
        self.rng = random.Random(seed)
        self.int_range = int_range
        self.float_range = float_range
        self.step = 0
        self.injected_at: list[int] = []
        self.injection_iteration: Optional[int] = None
        self._current_iteration = 0

    def begin_iteration(self, iteration: int) -> None:
        self._current_iteration = iteration

    def site(self, value: object, node: ast.Node) -> object:
        index = self.step
        self.step += 1
        if not self.target_step <= index < self.target_step + self.burst:
            return value
        corrupted = self._corrupt(value)
        # Identity is not the right test here: randint can return a value
        # equal to the original but not interned (large ints), and such a
        # "corruption" is unobservable — only record value inequality.
        if corrupted != value:
            self.injected_at.append(index)
            if self.injection_iteration is None:
                self.injection_iteration = self._current_iteration
        return corrupted

    def _corrupt(self, value: object) -> object:
        if isinstance(value, bool):
            return not value
        if isinstance(value, int):
            return self.rng.randint(*self.int_range)
        if isinstance(value, float):
            return self.rng.uniform(*self.float_range)
        return value  # references / strings: never corrupted (type safety)

    @property
    def fired(self) -> bool:
        return bool(self.injected_at)


class StepCounter:
    """Counts injectable sites in a clean run, to pick a uniform target."""

    def __init__(self) -> None:
        self.step = 0

    def begin_iteration(self, iteration: int) -> None:  # noqa: ARG002
        pass

    def site(self, value: object, node: ast.Node) -> object:  # noqa: ARG002
        self.step += 1
        return value
