"""Stabilization experiments (Section 6.2).

Runs a checked program twice on identical inputs — once clean, once with
a fault injected at a uniformly chosen memory/arithmetic operation — and
measures how many output samples the program needs to return to exactly
the reference behavior.

Outputs are compared per event-loop iteration: the error model assumes
input reads happen unconditionally each iteration, so devices are keyed
by iteration (see :class:`IterationKeyedDevice` in
:mod:`repro.runtime.devices` users can supply any such device factory)
and a corrupted iteration cannot shift the framing of later ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from repro.lang.symtab import ProgramInfo
from repro.obs import get_tracer
from repro.obs.events import get_event_log
from repro.runtime.compiler import CompiledRunner
from repro.runtime.devices import DeviceBus
from repro.runtime.injection import ErrorInjector, StepCounter
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeOptions,
    StepBudgetExceeded,
)

DeviceFactory = Callable[[], DeviceBus]


@dataclass
class InjectionTrial:
    """Outcome of a single fault-injection run."""

    target_step: int
    injection_iteration: Optional[int]
    corrupted_output: bool
    #: Number of reference output samples from the start of the injection
    #: iteration until outputs match the reference again; None when the
    #: output never deviated (masked fault).
    recovery_samples: Optional[int]
    #: Number of event-loop iterations until recovery (same convention).
    recovery_iterations: Optional[int]
    #: True if the run never returned to the reference behavior.
    diverged: bool = False
    #: True if the run tripped the step-budget watchdog (a corrupted
    #: value induced a runaway computation); campaigns record these as
    #: ``timeout`` rather than letting them hang a worker.
    timed_out: bool = False
    error_log_size: int = 0
    #: Convergence telemetry (None for not-injected and timed-out runs):
    #: per-iteration count of output samples deviating from the
    #: reference (:func:`divergence_series`), and — for recovered runs —
    #: the cumulative replayed-sample curve whose plateau equals
    #: ``recovery_samples`` (:func:`convergence_series`).
    divergence: Optional[list[int]] = None
    convergence: Optional[list[int]] = None
    #: Distributed-trial extras (repro.dist), all additive: the node the
    #: fault was injected into, the per-round per-node divergence matrix
    #: (``node_divergence[r][i]`` is 1 when node ``i``'s state differs
    #: from the reference after round ``r``), and one CRC32 digest per
    #: node over its full state trajectory.  None for single-node trials.
    node: Optional[int] = None
    node_divergence: Optional[list[list[int]]] = None
    node_digests: Optional[list[str]] = None


def recovery_distance(
    reference_groups: list[list[object]],
    faulty_groups: list[list[object]],
    injection_iteration: int,
) -> tuple[Optional[int], Optional[int], bool]:
    """Returns (samples, iterations, diverged).

    Recovery iteration: the first iteration r >= injection such that all
    per-iteration output groups from r onward equal the reference's.
    """
    if faulty_groups == reference_groups:
        return None, None, False  # fault masked: no visible corruption
    if len(faulty_groups) < len(reference_groups):
        # The faulty run ended early (e.g. a crash cut the event loop
        # short): the missing tail is itself a visible divergence, even
        # when the truncated prefix matches the reference exactly.
        return None, None, True
    recovery = None
    # Recovery requires the *entire* faulty tail from r onward to equal
    # the reference tail — full slices, so a faulty run with extra
    # trailing groups can never claim recovery.  r == len(reference) is
    # excluded: with no matching trailing output we cannot claim the
    # program recovered, so such runs count as diverged (give
    # experiments enough trailing iterations to observe recovery).
    for r in range(injection_iteration, len(reference_groups)):
        if faulty_groups[r:] == reference_groups[r:]:
            recovery = r
            break
    if recovery is None:
        return None, None, True
    samples = sum(
        len(reference_groups[i]) for i in range(injection_iteration, recovery)
    )
    return samples, recovery - injection_iteration, False


def divergence_series(
    reference_groups: list[list[object]],
    faulty_groups: list[list[object]],
) -> list[int]:
    """Per-iteration divergence-set size: how many output samples of
    iteration ``i`` differ between the faulty run and the reference
    (positions missing from either run count as differing).  The series
    the paper's Figures 6.1/6.2 make visible — it spikes at the
    injection point and decays to zero as execution re-converges."""
    length = max(len(reference_groups), len(faulty_groups))
    series: list[int] = []
    for i in range(length):
        reference = reference_groups[i] if i < len(reference_groups) else []
        faulty = faulty_groups[i] if i < len(faulty_groups) else []
        width = max(len(reference), len(faulty))
        series.append(sum(
            1 for j in range(width)
            if j >= len(reference) or j >= len(faulty)
            or reference[j] != faulty[j]
        ))
    return series


def convergence_series(
    reference_groups: list[list[object]],
    injection_iteration: int,
    recovery_iterations: int,
) -> list[int]:
    """Cumulative reference output samples replayed since the injection
    iteration, saturating once outputs re-converge.  By construction
    the final point (the plateau) equals the trial's recovery distance
    in samples — the scalar ``recovery_samples`` records."""
    recovery = injection_iteration + recovery_iterations
    series: list[int] = []
    total = 0
    for i in range(injection_iteration, len(reference_groups)):
        if i < recovery:
            total += len(reference_groups[i])
        series.append(total)
    return series


@dataclass
class StabilizationExperiment:
    """Orchestrates reference + injected runs of one program."""

    info: ProgramInfo
    device_factory: DeviceFactory
    options: RuntimeOptions = field(
        default_factory=lambda: RuntimeOptions(ignore_errors=True)
    )
    #: Execution backend; the closure-compiling runner is observationally
    #: identical to the interpreter (differentially tested) and 2-4x
    #: faster, which matters at paper-scale trial counts.
    engine: type = CompiledRunner
    #: Watchdog for *injected* runs only (the reference run is never
    #: budgeted): an absolute step cap, or a multiple of the reference
    #: run's step count.  ``step_budget`` wins when both are set; with
    #: neither, injected runs are unbudgeted (the historical behavior).
    step_budget: Optional[int] = None
    step_budget_factor: Optional[int] = None
    _reference_groups: Optional[list[list[object]]] = None
    _reference_steps: Optional[int] = None
    _total_steps: Optional[int] = None

    def _run(
        self,
        injector: Optional[object],
        options: Optional[RuntimeOptions] = None,
    ) -> Interpreter:
        interpreter = self.engine(
            self.info, self.device_factory(),
            options=options if options is not None else self.options,
            injector=injector,
        )
        interpreter.run()
        return interpreter

    def reference_groups(self) -> list[list[object]]:
        if self._reference_groups is None:
            interpreter = self._run(None)
            self._reference_groups = interpreter.outputs_by_iteration()
            self._reference_steps = interpreter.steps
        return self._reference_groups

    def reference_steps(self) -> int:
        """Execution steps of the clean run (the watchdog baseline)."""
        self.reference_groups()
        assert self._reference_steps is not None
        return self._reference_steps

    def total_steps(self) -> int:
        """Number of injectable sites in a clean run."""
        if self._total_steps is None:
            counter = StepCounter()
            self._run(counter)
            self._total_steps = counter.step
        return self._total_steps

    def _trial_budget(self) -> Optional[int]:
        if self.step_budget is not None:
            return self.step_budget
        if self.step_budget_factor is not None:
            return max(1000, self.step_budget_factor * self.reference_steps())
        return None

    def trial(self, seed: int, burst: int = 1) -> InjectionTrial:
        """One injected run with a uniformly chosen target site."""
        rng = random.Random(seed)
        target = rng.randrange(max(1, self.total_steps()))
        return self.trial_at(target, seed=seed, burst=burst)

    def trial_at(
        self, target_step: int, seed: int, burst: int = 1
    ) -> InjectionTrial:
        """One injected run corrupting the given site.  This is the unit
        campaigns sweep: exhaustive/stratified plans enumerate sites
        explicitly instead of sampling them."""
        with get_tracer().span(
            "trial", site=target_step, seed=seed, burst=burst
        ) as span:
            trial = self._trial_at(target_step, seed, burst, span)
            span.set_attr("timed_out", trial.timed_out)
            span.set_attr("diverged", trial.diverged)
        return trial

    def _trial_at(
        self, target_step: int, seed: int, burst: int, span
    ) -> InjectionTrial:
        injector = ErrorInjector(
            target_step=target_step, seed=seed + 1, burst=burst
        )
        budget = self._trial_budget()
        options = (
            replace(self.options, step_budget=budget)
            if budget is not None else self.options
        )
        events = get_event_log()
        try:
            interpreter = self._run(injector, options)
        except StepBudgetExceeded:
            # The corrupted run never finished: a runaway loop or
            # explosion of work.  Recorded as a timeout, never a hang.
            span.count("steps", budget or 0)
            events.emit(
                "trial.timeout",
                "step-budget watchdog stopped a runaway injected run",
                level="warn",
                site=target_step,
                seed=seed,
                injection_iteration=injector.injection_iteration,
                step_budget=budget,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=injector.injection_iteration,
                corrupted_output=True,
                recovery_samples=None,
                recovery_iterations=None,
                timed_out=True,
            )
        span.count("steps", interpreter.steps)
        span.count("ignored_errors", len(interpreter.error_log))
        faulty_groups = interpreter.outputs_by_iteration()
        reference = self.reference_groups()
        injection_iteration = injector.injection_iteration
        if injection_iteration is None:
            # The injector replaced a value with an equal one or never hit
            # a corruptible site: no fault was actually introduced.
            events.emit(
                "trial.not_injected", level="debug",
                site=target_step, seed=seed,
            )
            return InjectionTrial(
                target_step=target_step,
                injection_iteration=None,
                corrupted_output=False,
                recovery_samples=None,
                recovery_iterations=None,
                error_log_size=len(interpreter.error_log),
            )
        events.emit(
            "trial.corrupted",
            "fault injected",
            level="info",
            site=target_step,
            seed=seed,
            iteration=injection_iteration,
        )
        samples, iterations, diverged = recovery_distance(
            reference, faulty_groups, injection_iteration
        )
        divergence = divergence_series(reference, faulty_groups)
        convergence = (
            convergence_series(reference, injection_iteration, iterations)
            if iterations is not None else None
        )
        if diverged:
            events.emit(
                "trial.diverged",
                "outputs never returned to the reference behavior",
                level="error",
                site=target_step,
                iteration=injection_iteration,
            )
        elif samples is not None:
            events.emit(
                "trial.recovered",
                "outputs re-converged to the reference",
                level="info",
                site=target_step,
                iteration=injection_iteration,
                recovery_samples=samples,
                recovery_iterations=iterations,
            )
        else:
            events.emit(
                "trial.masked", level="debug",
                site=target_step, iteration=injection_iteration,
            )
        return InjectionTrial(
            target_step=target_step,
            injection_iteration=injection_iteration,
            corrupted_output=samples is not None or diverged,
            recovery_samples=samples,
            recovery_iterations=iterations,
            diverged=diverged,
            error_log_size=len(interpreter.error_log),
            divergence=divergence,
            convergence=convergence,
        )

    def run_trials(
        self, count: int, seed: int = 0, burst: int = 1
    ) -> list[InjectionTrial]:
        return [self.trial(seed + i, burst=burst) for i in range(count)]


def corrupted_trials(trials: list[InjectionTrial]) -> list[InjectionTrial]:
    return [t for t in trials if t.corrupted_output]


def recovery_histogram(
    trials: list[InjectionTrial], bin_size: int
) -> dict[int, int]:
    """Histogram of recovery distances in output samples (Fig. 6.1)."""
    histogram: dict[int, int] = {}
    for trial in trials:
        if trial.recovery_samples is None:
            continue
        bucket = (trial.recovery_samples // bin_size) * bin_size
        histogram[bucket] = histogram.get(bucket, 0) + 1
    return dict(sorted(histogram.items()))
