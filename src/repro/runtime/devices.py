"""Simulated input devices.

``Device.readX()`` calls in sjava programs pull values from a
:class:`DeviceBus`.  Two implementations:

* :class:`ScriptedDevice` — fixed per-function value sequences, for
  deterministic tests and replayable experiments;
* :class:`SyntheticDevice` — deterministic pseudo-random generators per
  function, seeded, for long experiment runs.

When a scripted stream runs dry the device raises :class:`InputExhausted`,
which the interpreter turns into a clean end of the event loop — the
paper's programs run for as long as input frames arrive.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional


class InputExhausted(Exception):
    """No more input: the event loop ends."""


class DeviceBus:
    """Base device: every read raises unless a source is registered."""

    def __init__(self) -> None:
        self._sources: dict[str, Callable[[], object]] = {}
        self.reads = 0

    def register(self, name: str, source: Callable[[], object]) -> None:
        self._sources[name] = source

    def read(self, name: str) -> object:
        self.reads += 1
        source = self._sources.get(name)
        if source is None:
            raise InputExhausted(f"no input source for Device.{name}")
        return source()


class ScriptedDevice(DeviceBus):
    """Replays fixed sequences; raises :class:`InputExhausted` at the end.

    ``streams`` maps a Device function name to a list of values.
    """

    def __init__(self, streams: dict[str, list]) -> None:
        super().__init__()
        self.streams = {name: list(values) for name, values in streams.items()}
        self._cursors = {name: 0 for name in streams}
        for name in streams:
            self.register(name, self._make_reader(name))

    def _make_reader(self, name: str) -> Callable[[], object]:
        def reader() -> object:
            cursor = self._cursors[name]
            values = self.streams[name]
            if cursor >= len(values):
                raise InputExhausted(f"Device.{name} stream exhausted")
            self._cursors[name] = cursor + 1
            return values[cursor]

        return reader


class SyntheticDevice(DeviceBus):
    """Deterministic pseudo-random inputs with realistic shapes:

    * int readers produce small non-negative sensor-like values;
    * float readers produce smooth band-limited signals (sums of
      sinusoids plus seeded noise), so decoder-style programs see
      plausible waveforms.
    """

    def __init__(self, seed: int = 0, limit: Optional[int] = None) -> None:
        super().__init__()
        self.rng = random.Random(seed)
        self.limit = limit
        self._count = 0
        self._phase: dict[str, int] = {}

    def read(self, name: str) -> object:
        if self.limit is not None and self._count >= self.limit:
            raise InputExhausted("synthetic input limit reached")
        self._count += 1
        self.reads += 1
        source = self._sources.get(name)
        if source is not None:
            return source()
        return self._default_read(name)

    def _default_read(self, name: str) -> object:
        tick = self._phase.get(name, 0)
        self._phase[name] = tick + 1
        if name in ("readTemp", "readHumidity", "readFloat", "readSample"):
            base = math.sin(tick * 0.21) + 0.5 * math.sin(tick * 0.043 + 1.0)
            return base + self.rng.uniform(-0.05, 0.05)
        # int-like sensors
        return self.rng.randint(0, 15)


class IterationKeyedDevice(DeviceBus):
    """Inputs are a pure function of (iteration, function name, read index
    within the iteration).

    This encodes the paper's error-model assumption that input reads are
    performed unconditionally every iteration (Section 1.1.2): even if a
    fault makes one iteration read a different *number* of values, the
    next iteration's inputs are unaffected, so reference and injected
    runs see identical post-fault input streams.

    ``generator(name, iteration, index) -> value``; ``iterations`` bounds
    the event loop (reads beyond it raise :class:`InputExhausted`).
    """

    def __init__(
        self,
        generator: Callable[[str, int, int], object],
        iterations: int,
    ) -> None:
        super().__init__()
        self.generator = generator
        self.iterations = iterations
        self.iteration = 0
        self._index_in_iteration: dict[str, int] = {}

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = iteration
        self._index_in_iteration.clear()

    def read(self, name: str) -> object:
        if self.iteration >= self.iterations:
            raise InputExhausted("input stream complete")
        self.reads += 1
        index = self._index_in_iteration.get(name, 0)
        self._index_in_iteration[name] = index + 1
        return self.generator(name, self.iteration, index)


class OutputSink:
    """Collects values emitted through SJ.broadcast / SJ.print / SJ.emit."""

    def __init__(self) -> None:
        self.values: list[object] = []

    def emit(self, value: object) -> None:
        self.values.append(value)

    def clear(self) -> None:
        self.values.clear()
