"""Execution substrate for sjava programs.

The paper evaluates self-stabilization by running the benchmarks on the
JVM with compiler-injected faults (Section 6.2).  This package provides
the equivalent: an AST interpreter implementing SJava's crash-avoidance
code-generation semantics (Section 4.4 — uncaught errors are logged and
given defined behavior; possibly-unbounded loops are bounded), simulated
input devices, a fault injector that replaces the result of a randomly
chosen memory or arithmetic operation with a random value, and the
stabilization-experiment harness that measures recovery distances.
"""

from repro.runtime.devices import DeviceBus, ScriptedDevice, SyntheticDevice
from repro.runtime.injection import ErrorInjector
from repro.runtime.interpreter import (
    Interpreter,
    RuntimeOptions,
    SJavaRuntimeError,
    StepBudgetExceeded,
)
from repro.runtime.stabilization import (
    InjectionTrial,
    StabilizationExperiment,
    recovery_distance,
)

__all__ = [
    "DeviceBus",
    "ErrorInjector",
    "InjectionTrial",
    "Interpreter",
    "RuntimeOptions",
    "SJavaRuntimeError",
    "ScriptedDevice",
    "StabilizationExperiment",
    "StepBudgetExceeded",
    "SyntheticDevice",
    "recovery_distance",
]
