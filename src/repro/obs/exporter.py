"""A dependency-free HTTP observability plane.

:class:`MetricsExporter` runs a stdlib :mod:`http.server` on a daemon
thread and serves three read-only endpoints:

* ``GET /metrics`` — the Prometheus text exposition of a
  :class:`~repro.obs.metrics.MetricsRegistry`.  An optional ``prepare``
  callback runs first (the daemon passes its cache-stats sync), so the
  body is **byte-equal** to the daemon's socket ``metrics`` op with
  ``format="prometheus"`` — CI diffs the two;
* ``GET /healthz`` — a small JSON liveness document from the ``health``
  callback (the daemon reports pid, uptime, in-flight requests from its
  drain accounting, requests served);
* ``GET /events?level=&name=&limit=`` — JSON from the ``events``
  callback (the daemon's in-memory event ring), filtered through
  :func:`repro.obs.events.filter_events` exactly like the socket
  ``events`` op.

Attach points: ``repro serve --http-port`` and ``repro campaign
--http-port`` (long drives export the process-wide registry).  Like
every obs layer, the off state is a null object —
:func:`maybe_exporter` returns a :class:`NullExporter` when no port is
configured, and a micro-benchmark pins its zero cost.

Binding defaults to ``127.0.0.1`` (the plane is observability, not an
API; put a real reverse proxy in front to expose it).  ``port=0`` binds
an ephemeral port, published as :attr:`MetricsExporter.port` — tests
use it.  A Prometheus scrape-config example lives in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.events import EventError, filter_events
from repro.obs.metrics import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ExporterError(RuntimeError):
    """The exporter could not bind or is used before :meth:`start`."""


class _Handler(BaseHTTPRequestHandler):
    # Responses are tiny; one HTTP/1.0-style response per connection
    # keeps the handler trivial and scraper-compatible.
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        exporter = self.server.exporter
        url = urlparse(self.path)
        if url.path == "/metrics":
            self._send(200, PROMETHEUS_CONTENT_TYPE, exporter.metrics_text())
        elif url.path == "/healthz":
            self._send_json(200, exporter.health_document())
        elif url.path == "/events":
            self._events(parse_qs(url.query))
        else:
            self._send_json(
                404,
                {"ok": False, "message": f"unknown path {url.path!r}; "
                 f"endpoints: /metrics /healthz /events"},
            )

    def _events(self, query: dict[str, list[str]]) -> None:
        exporter = self.server.exporter
        if exporter.events is None:
            self._send_json(
                404,
                {"ok": False,
                 "message": "no event ring attached to this exporter"},
            )
            return
        limit_text = query.get("limit", [None])[0]
        limit: Optional[int] = None
        if limit_text is not None:
            try:
                limit = int(limit_text)
                if limit < 0:
                    raise ValueError
            except ValueError:
                self._send_json(
                    400,
                    {"ok": False,
                     "message": f"limit must be a non-negative int, "
                     f"got {limit_text!r}"},
                )
                return
        try:
            selected = filter_events(
                exporter.events(),
                min_level=query.get("level", [None])[0],
                name=query.get("name", [None])[0],
                tail=limit,
            )
        except EventError as exc:
            self._send_json(400, {"ok": False, "message": str(exc)})
            return
        self._send_json(200, {"ok": True, "events": selected})

    def _send_json(self, status: int, document: dict) -> None:
        self._send(
            status,
            "application/json",
            json.dumps(document, sort_keys=True) + "\n",
        )

    def _send(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the scraper went away mid-response; not our problem

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes every few seconds must not spam stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    exporter: "MetricsExporter"


class MetricsExporter:
    """Serves a registry (plus optional health/events callbacks) over
    HTTP from a daemon thread.  Construct, :meth:`start`, :meth:`close`
    — or use :func:`maybe_exporter`."""

    enabled = True

    def __init__(
        self,
        *,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        prepare: Optional[Callable[[], None]] = None,
        events: Optional[Callable[[], list]] = None,
        health: Optional[Callable[[], dict]] = None,
    ) -> None:
        self.registry = registry
        self.host = host
        self.requested_port = port
        self.prepare = prepare
        self.events = events
        self.health = health
        self._server: Optional[_Server] = None
        self._thread: Optional[threading.Thread] = None

    # -- the three documents ---------------------------------------------

    def metrics_text(self) -> str:
        """What ``/metrics`` serves — the exact bytes the socket
        ``metrics`` op returns in ``metrics_text``."""
        if self.prepare is not None:
            self.prepare()
        return self.registry.render_prometheus()

    def health_document(self) -> dict:
        document = {"ok": True}
        if self.health is not None:
            document.update(self.health())
        return document

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None:
            raise ExporterError("exporter is not started")
        return self._server.server_address[1]

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            return self
        try:
            server = _Server((self.host, self.requested_port), _Handler)
        except OSError as exc:
            raise ExporterError(
                f"cannot bind http exporter to "
                f"{self.host}:{self.requested_port}: {exc}"
            ) from exc
        server.exporter = self
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, daemon=True,
            name="repro-http-exporter",
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


class NullExporter:
    """The disabled exporter: every lifecycle call is a no-op.  Servers
    and campaign drivers hold one of these when no ``--http-port`` was
    given, so the off state costs an attribute lookup and a call —
    pinned by a micro-benchmark in ``tests/obs/test_propagate.py``."""

    enabled = False
    port = None

    def start(self) -> "NullExporter":
        return self

    def close(self) -> None:
        return None

    def __enter__(self) -> "NullExporter":
        return self

    def __exit__(self, *exc) -> None:
        return None


def maybe_exporter(
    port: Optional[int],
    *,
    registry: MetricsRegistry,
    host: str = "127.0.0.1",
    prepare: Optional[Callable[[], None]] = None,
    events: Optional[Callable[[], list]] = None,
    health: Optional[Callable[[], dict]] = None,
) -> MetricsExporter | NullExporter:
    """A started :class:`MetricsExporter` when ``port`` is set, the
    shared-shape :class:`NullExporter` when it is ``None``."""
    if port is None:
        return NullExporter()
    return MetricsExporter(
        registry=registry, host=host, port=port,
        prepare=prepare, events=events, health=health,
    ).start()
