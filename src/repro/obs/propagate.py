"""Trace-context propagation across process boundaries.

A campaign driver, its pool workers, and the checking daemon are
separate processes with separate tracers; without propagation every
worker-side span tree starts a fresh trace and the causal story of a
campaign — *this* trial ran because *that* shard was driven by *that*
campaign — is lost at each ``fork``/socket boundary.  This module
carries the missing edge:

* :class:`TraceContext` is ``(trace_id, parent span_id)`` serialized as
  a W3C-traceparent-style string ``"00-<trace_id>-<span_id>-01"`` —
  the same four-field ``version-trace-parent-flags`` framing, carrying
  our ``t<N>``/integer ids instead of hex ones;
* :func:`current_context` snapshots the active span as a context (and
  returns ``None`` in one cheap call when tracing is off — the no-op
  path is pinned by a micro-benchmark);
* :func:`shard_trace_payload` / :func:`worker_traced` are the two ends
  of the campaign's pickle boundary: the driver stamps each shard
  payload with a directory plus its traceparent, the worker installs a
  process-wide tracer writing ``worker-<pid>.trace.jsonl`` under that
  directory and opens its ``worker.shard`` root *attached* to the
  driver's context;
* :func:`merge_traces` stitches the per-worker files back into the
  driver's trace: worker span ids are renumbered above the driver's
  (each worker numbers from 1), ``remote_parent`` edges keep their
  driver-side ids, every worker event gains a ``pid`` provenance key,
  and worker events are written *before* driver events so the merged
  file preserves the children-close-before-parents invariant
  :func:`repro.obs.sinks.aggregate_trace` relies on.

The daemon protocol reuses the same context: clients stamp requests
with ``"trace": <traceparent>`` (:class:`repro.service.client.ReproClient`
does it automatically when a span is active) and the daemon opens its
``op.<name>`` span under :meth:`~repro.obs.trace.Tracer.attached`.

See ``docs/OBSERVABILITY.md`` ("Distributed tracing") for the wire
format and the orphan policy.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.obs.sinks import JsonlTraceWriter, read_trace
from repro.obs.trace import Span, Tracer, get_tracer, installed_tracer

from contextlib import contextmanager

#: The traceparent framing we speak: ``VERSION-trace_id-span_id-FLAGS``.
TRACEPARENT_VERSION = "00"
TRACEPARENT_FLAGS = "01"

#: Worker trace files written under a campaign's ``<trace>.workers/``
#: directory match this pattern; :func:`merge_traces` globs it.
WORKER_TRACE_GLOB = "worker-*.trace.jsonl"


class PropagationError(ValueError):
    """A traceparent string (or a worker trace layout) is malformed."""


@dataclass(frozen=True)
class TraceContext:
    """One cross-process parent edge: *trace* ``trace_id``, *parent
    span* ``span_id``."""

    trace_id: str
    span_id: int

    def to_traceparent(self) -> str:
        """The wire form, e.g. ``"00-t1-7-01"``."""
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}"
            f"-{TRACEPARENT_FLAGS}"
        )

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext":
        """Parse the wire form; raises :class:`PropagationError` on any
        deviation (wrong field count, unknown version, non-int span)."""
        if not isinstance(header, str):
            raise PropagationError(
                f"traceparent must be a string, got {type(header).__name__}"
            )
        parts = header.split("-")
        if len(parts) != 4:
            raise PropagationError(
                f"traceparent {header!r} must have 4 '-'-separated fields "
                f"(version-trace_id-span_id-flags)"
            )
        version, trace_id, span_id, flags = parts
        if version != TRACEPARENT_VERSION:
            raise PropagationError(
                f"unsupported traceparent version {version!r} "
                f"(speaking {TRACEPARENT_VERSION})"
            )
        if flags != TRACEPARENT_FLAGS:
            raise PropagationError(
                f"unsupported traceparent flags {flags!r} "
                f"(speaking {TRACEPARENT_FLAGS})"
            )
        if not trace_id:
            raise PropagationError("traceparent trace_id must be non-empty")
        try:
            parsed_span = int(span_id)
        except ValueError:
            raise PropagationError(
                f"traceparent span_id {span_id!r} must be an int"
            ) from None
        return cls(trace_id=trace_id, span_id=parsed_span)


def current_context() -> Optional[TraceContext]:
    """The active span as a :class:`TraceContext`, or ``None`` when no
    span is open (always ``None`` under the :class:`NullTracer` — one
    method call, no allocation)."""
    span = get_tracer().current()
    if span is None:
        return None
    return TraceContext(trace_id=span.trace_id, span_id=span.span_id)


# ---------------------------------------------------------------------------
# The campaign's pickle boundary
# ---------------------------------------------------------------------------


def shard_trace_payload(trace_dir: str | Path | None) -> Optional[dict]:
    """The driver half: the ``trace`` field stamped onto each shard
    payload, or ``None`` when no trace directory is configured or no
    span is active (tracing off)."""
    if trace_dir is None:
        return None
    context = current_context()
    if context is None:
        return None
    return {
        "dir": str(trace_dir),
        "traceparent": context.to_traceparent(),
    }


#: One tracer + writer per (trace dir, pid): a pool worker process runs
#: many shards, and sharing the tracer keeps its span ids unique within
#: its ``worker-<pid>.trace.jsonl`` file.
_worker_state: dict[tuple[str, int], tuple[Tracer, JsonlTraceWriter]] = {}
_worker_lock = threading.Lock()


def _worker_tracer(trace_dir: str) -> Tracer:
    key = (trace_dir, os.getpid())
    with _worker_lock:
        state = _worker_state.get(key)
        if state is None:
            writer = JsonlTraceWriter(
                Path(trace_dir) / f"worker-{key[1]}.trace.jsonl"
            )
            state = (Tracer(sinks=(writer,)), writer)
            _worker_state[key] = state
        return state[0]


def reset_worker_tracers() -> None:
    """Close and forget cached worker tracers (tests; never needed in a
    real worker — process exit is the cleanup)."""
    with _worker_lock:
        for _, writer in _worker_state.values():
            writer.close()
        _worker_state.clear()


@contextmanager
def worker_traced(trace: Optional[dict], **attrs) -> Iterator[Optional[Span]]:
    """The worker half: run a shard under the driver's trace context.

    ``trace`` is the payload :func:`shard_trace_payload` stamped (or
    ``None``, in which case this is a no-op and the installed tracer —
    normally the null tracer — is untouched).  Installs the process-wide
    worker tracer, attaches the driver's context, and opens a
    ``worker.shard`` root span carrying the worker ``pid`` plus
    ``attrs``; every library span opened inside (injection trials,
    checker passes) nests under it, so the whole worker-side tree hangs
    off the driver's span after :func:`merge_traces`.
    """
    if not trace:
        yield None
        return
    context = TraceContext.from_traceparent(trace["traceparent"])
    tracer = _worker_tracer(str(trace["dir"]))
    with installed_tracer(tracer):
        with tracer.attached(context):
            with tracer.span(
                "worker.shard", pid=os.getpid(), **attrs
            ) as span:
                yield span


# ---------------------------------------------------------------------------
# Merging per-worker files into the driver's trace
# ---------------------------------------------------------------------------


def _worker_pid(path: Path) -> int:
    name = path.name
    try:
        return int(name.split("-", 1)[1].split(".", 1)[0])
    except (IndexError, ValueError):
        raise PropagationError(
            f"worker trace file {path} does not match "
            f"'{WORKER_TRACE_GLOB}' — cannot recover its pid"
        ) from None


def merge_traces(
    driver_path: str | Path,
    worker_dir: str | Path,
    *,
    output: str | Path | None = None,
    driver_pid: Optional[int] = None,
) -> list[dict]:
    """Stitch per-worker trace files into the driver's trace.

    Returns the merged event list (and atomically writes it to
    ``output`` when given — ``output`` may equal ``driver_path`` to
    merge in place).  Merge semantics:

    * worker files under ``worker_dir`` are taken in sorted name order,
      so two merges of the same campaign are byte-identical;
    * each worker's span ids are renumbered into a block above the
      driver's highest id (workers number from 1 independently);
      ``remote_parent``-marked events keep their ``parent_id`` verbatim
      — it already names a *driver* span;
    * a worker event whose parent id never closed in its file (worker
      killed mid-write) keeps a dangling — renumbered, collision-free —
      parent: :func:`repro.obs.sinks.validate_trace` counts it as an
      orphan and :func:`repro.obs.sinks.build_forest` renders it under
      a synthetic per-process root, never dropping it;
    * every worker event gains ``"pid"``, parsed from its file name
      (``driver_pid``, when given, is stamped onto driver events the
      same way);
    * worker events precede driver events in the output.  The only
      cross-file parent edges point worker → driver, and each file is
      already children-first, so the merged stream still closes every
      child before its parent — the invariant the self-time accounting
      of :func:`repro.obs.sinks.aggregate_trace` needs.
    """
    driver_events = read_trace(driver_path)
    highest = max(
        (event["span_id"] for event in driver_events), default=0
    )
    worker_paths = sorted(Path(worker_dir).glob(WORKER_TRACE_GLOB))
    merged: list[dict] = []
    next_id = highest + 1
    for path in worker_paths:
        pid = _worker_pid(path)
        mapping: dict[int, int] = {}

        def renumber(old: int) -> int:
            nonlocal next_id
            mapped = mapping.get(old)
            if mapped is None:
                mapped = mapping[old] = next_id
                next_id += 1
            return mapped

        for event in read_trace(path):
            event = dict(event)
            event["span_id"] = renumber(event["span_id"])
            if event["parent_id"] is not None and not event.get(
                "remote_parent"
            ):
                event["parent_id"] = renumber(event["parent_id"])
            event["pid"] = pid
            merged.append(event)
    if driver_pid is not None:
        driver_events = [
            {**event, "pid": driver_pid} for event in driver_events
        ]
    merged.extend(driver_events)
    if output is not None:
        _write_atomically(Path(output), merged)
    return merged


def _write_atomically(path: Path, events: list[dict]) -> None:
    import json

    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
