"""Structured, leveled, trace-correlated event log.

Spans (:mod:`repro.obs.trace`) answer *how long*; metrics
(:mod:`repro.obs.metrics`) answer *how many*; events answer *what
happened* — a corruption was injected at site 412, iteration 7; the
outputs re-converged 3 iterations later; a shard infra-failed after two
retries.  Each event is one flat JSON object carrying:

* a **level** (``debug`` < ``info`` < ``warn`` < ``error``) gated by the
  log's threshold, so per-iteration telemetry costs nothing unless
  someone asked for ``debug``;
* the **active trace/span id** read from the installed tracer at emit
  time, so events join spans on ``(trace_id, span_id)`` the way
  Dapper-style pipelines correlate logs with traces;
* a **monotonic, injectable clock** and a process-local sequence
  number, so tests produce byte-identical streams;
* a ``schema``-versioned envelope whose executable validator is
  :func:`validate_event_record` (golden file:
  ``tests/obs/golden/events.golden.jsonl``).

Like tracing, event logging is strictly opt-in: the default log is a
:class:`NullEventLog` whose :meth:`~NullEventLog.emit` is a no-op, so
instrumented hot paths (the runtime event loop, injection trials) pay
one global read and a method call when events are disabled — pinned by
a micro-benchmark in ``tests/obs/test_events.py``.

Sinks are anything with ``write(record: dict)``:
:class:`JsonlEventWriter` appends one event per line through the
atomic-append machinery of :class:`repro.obs.sinks.JsonlWriter`;
:class:`EventBuffer` keeps the last N events in memory (the daemon's
``events`` op); :class:`LoggingBridge` forwards every record to the
stdlib :mod:`logging` tree under the ``repro`` logger, so third-party
embedders see our events through whatever logging setup they already
run.
"""

from __future__ import annotations

import collections
import json
import logging
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Sequence

from repro.obs.sinks import JsonlWriter, read_jsonl
from repro.obs.trace import get_tracer

#: Bump when the event envelope layout changes.
EVENTS_SCHEMA = 1

#: Severity levels, least to most severe.
LEVELS = ("debug", "info", "warn", "error")

_LEVEL_RANK = {level: rank for rank, level in enumerate(LEVELS)}

#: stdlib logging equivalents, for :class:`LoggingBridge` and the CLI's
#: ``--log-level`` flag.
PY_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}


class EventError(ValueError):
    """An event stream violated the documented JSONL schema."""


def level_rank(level: str) -> int:
    """Numeric severity of ``level``; raises :class:`EventError` on an
    unknown name so typos fail loudly at the call site."""
    try:
        return _LEVEL_RANK[level]
    except KeyError:
        raise EventError(
            f"unknown event level {level!r}; levels: {LEVELS}"
        ) from None


class EventLog:
    """Produces structured event records and fans them out to sinks.

    ``level`` is the emission threshold (events below it vanish before
    the envelope is even built).  ``sample`` maps an event *name* to a
    keep-1-in-N sampling interval — counter-based, not random, so a
    sampled stream is deterministic and replayable.  ``clock`` defaults
    to :func:`time.monotonic` and is injectable for byte-deterministic
    tests.
    """

    enabled = True

    def __init__(
        self,
        *,
        level: str = "info",
        sinks: Sequence = (),
        clock: Callable[[], float] = time.monotonic,
        sample: Optional[dict[str, int]] = None,
    ) -> None:
        self.level = level
        self._threshold = level_rank(level)
        self.sinks = list(sinks)
        self.clock = clock
        self.sample = dict(sample or {})
        for name, every in self.sample.items():
            if not isinstance(every, int) or every < 1:
                raise EventError(
                    f"sample interval for {name!r} must be a positive "
                    f"int, got {every!r}"
                )
        self._seen: dict[str, int] = {}
        self._seq = 0
        self._lock = threading.Lock()

    def enabled_for(self, level: str) -> bool:
        """True when events at ``level`` pass the threshold — the guard
        instrumented code uses before computing expensive attributes
        (per-iteration digests, say)."""
        return level_rank(level) >= self._threshold

    def emit(
        self, name: str, message: str = "", *, level: str = "info", **attrs
    ) -> Optional[dict]:
        """Record one event; returns the emitted envelope, or ``None``
        when the level gate or the sampler dropped it."""
        if level_rank(level) < self._threshold:
            return None
        with self._lock:
            every = self.sample.get(name)
            if every is not None:
                seen = self._seen.get(name, 0)
                self._seen[name] = seen + 1
                if seen % every:
                    return None
            self._seq += 1
            seq = self._seq
        span = get_tracer().current()
        record = {
            "schema": EVENTS_SCHEMA,
            "event": "log",
            "seq": seq,
            "time_seconds": self.clock(),
            "level": level,
            "name": name,
            "message": message,
            "trace_id": None if span is None else span.trace_id,
            "span_id": None if span is None else span.span_id,
            "attrs": attrs,
        }
        for sink in self.sinks:
            sink.write(record)
        return record


class NullEventLog:
    """The disabled event log: ``emit`` does nothing.  Kept trivial —
    this object sits inside the runtime's event loop."""

    enabled = False
    level = "error"
    sinks: list = []

    def enabled_for(self, level: str) -> bool:
        return False

    def emit(
        self, name: str, message: str = "", *, level: str = "info", **attrs
    ) -> None:
        return None


_NULL_EVENT_LOG = NullEventLog()
_event_log_lock = threading.Lock()
_current_event_log: EventLog | NullEventLog = _NULL_EVENT_LOG


def get_event_log() -> EventLog | NullEventLog:
    """The process-wide event log instrumented code reports to."""
    return _current_event_log


def set_event_log(
    log: Optional[EventLog | NullEventLog],
) -> EventLog | NullEventLog:
    """Install ``log`` (None restores the no-op default); returns the
    previously installed log so callers can restore it."""
    global _current_event_log
    with _event_log_lock:
        previous = _current_event_log
        _current_event_log = log if log is not None else _NULL_EVENT_LOG
    return previous


@contextmanager
def installed_event_log(
    log: EventLog | NullEventLog,
) -> Iterator[EventLog | NullEventLog]:
    """Scoped :func:`set_event_log` — the previous log is restored on
    exit, so tests and CLI commands cannot leak logging state."""
    previous = set_event_log(log)
    try:
        yield log
    finally:
        set_event_log(previous)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class JsonlEventWriter(JsonlWriter):
    """Appends one event record per line; atomic at line granularity
    (see :class:`repro.obs.sinks.JsonlWriter`)."""


class EventBuffer:
    """Keeps the most recent ``capacity`` event records in memory —
    the daemon's ``events`` op reads from one of these."""

    def __init__(self, capacity: int = 512) -> None:
        self._records: collections.deque[dict] = collections.deque(
            maxlen=capacity
        )
        self._lock = threading.Lock()

    def write(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    @property
    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()


class LoggingBridge:
    """Forwards event records to stdlib :mod:`logging`.

    Third-party embedders that already run a logging setup attach one of
    these (or install an :class:`EventLog` containing one via
    :func:`set_event_log`) and our structured events surface as ordinary
    log records under the ``repro.<event name>`` hierarchy — level
    mapped through :data:`PY_LEVELS`, attributes rendered as sorted
    ``key=value`` pairs.
    """

    def __init__(self, logger: Optional[logging.Logger] = None) -> None:
        self.logger = logger if logger is not None else logging.getLogger(
            "repro"
        )

    def write(self, record: dict) -> None:
        level = PY_LEVELS.get(record["level"], logging.INFO)
        logger = self.logger.getChild(record["name"])
        if not logger.isEnabledFor(level):
            return
        attrs = record["attrs"]
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        parts = [part for part in (record["message"], detail) if part]
        logger.log(level, "%s", " ".join(parts) if parts else record["name"])


# ---------------------------------------------------------------------------
# Reading streams back
# ---------------------------------------------------------------------------

_REQUIRED_KEYS = (
    "schema", "event", "seq", "time_seconds", "level", "name", "message",
    "trace_id", "span_id", "attrs",
)


def validate_event_record(record: dict) -> None:
    """Raise :class:`EventError` unless ``record`` is a well-formed
    event envelope (the schema in ``docs/OBSERVABILITY.md``)."""
    if not isinstance(record, dict):
        raise EventError("event record must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in record]
    if missing:
        raise EventError(f"event record missing keys {missing}")
    if record["schema"] != EVENTS_SCHEMA:
        raise EventError(
            f"unsupported events schema {record['schema']!r} "
            f"(speaking {EVENTS_SCHEMA})"
        )
    if record["event"] != "log":
        raise EventError(f"unknown event kind {record['event']!r}")
    if not isinstance(record["seq"], int) or record["seq"] < 1:
        raise EventError("seq must be a positive int")
    if not isinstance(record["time_seconds"], (int, float)):
        raise EventError("time_seconds must be a number")
    if record["level"] not in _LEVEL_RANK:
        raise EventError(f"unknown event level {record['level']!r}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise EventError("event needs a non-empty name")
    if not isinstance(record["message"], str):
        raise EventError("message must be a string")
    if record["trace_id"] is not None and not isinstance(
        record["trace_id"], str
    ):
        raise EventError("trace_id must be a string or null")
    if record["span_id"] is not None and not isinstance(
        record["span_id"], int
    ):
        raise EventError("span_id must be an int or null")
    if not isinstance(record["attrs"], dict):
        raise EventError("attrs must be an object")


def read_events(path) -> list[dict]:
    """Parse and validate a JSONL events file.

    A truncated final line (crashed writer) is skipped with a
    :class:`~repro.obs.sinks.TraceWarning`; see
    :func:`repro.obs.sinks.read_jsonl`.
    """
    return read_jsonl(path, validate=validate_event_record, error=EventError)


def validate_events(path) -> list[dict]:
    """:func:`read_events` plus a non-emptiness check — the executable
    form CI runs over the smoke campaign's events artifact."""
    records = read_events(path)
    if not records:
        raise EventError(f"{path}: events file holds no event records")
    return records


def filter_events(
    records: Iterable[dict],
    *,
    min_level: Optional[str] = None,
    name: Optional[str] = None,
    trace_id: Optional[str] = None,
    span_id: Optional[int] = None,
    tail: Optional[int] = None,
) -> list[dict]:
    """The shared filter behind ``repro events`` and the daemon's
    ``events`` op: severity floor, substring name match, exact
    trace/span correlation, last-N tail (applied after the filters)."""
    floor = level_rank(min_level) if min_level is not None else 0
    out = [
        record for record in records
        if _LEVEL_RANK[record["level"]] >= floor
        and (name is None or name in record["name"])
        and (trace_id is None or record["trace_id"] == trace_id)
        and (span_id is None or record["span_id"] == span_id)
    ]
    if tail is not None and tail >= 0:
        out = out[len(out) - min(tail, len(out)):]
    return out


def follow_events(
    path,
    *,
    poll_seconds: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    stop: Optional[Callable[[], bool]] = None,
) -> Iterator[dict]:
    """Yield validated event records from a JSONL file as they are
    appended — ``tail -f`` for ``--events`` streams, no daemon needed.

    Polls by byte offset every ``poll_seconds``.  The same crashed-writer
    tolerance as :func:`repro.obs.sinks.read_jsonl`, live: a final line
    still missing its newline is an in-flight ``os.write``, so it stays
    buffered until the rest arrives instead of being parsed half-done.
    A *complete* line that fails validation raises :class:`EventError` —
    that was a full write, so corruption there is real.  A file that
    does not exist yet is waited for.  ``stop`` (checked once per poll)
    and ``sleep`` are injectable so tests can drive the loop without
    wall-clock time; without a ``stop``, iterate until interrupted.
    """
    from pathlib import Path

    target = Path(path)
    offset = 0
    buffer = b""
    while True:
        chunk = b""
        if target.exists():
            with open(target, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset += len(chunk)
        if chunk:
            buffer += chunk
            while True:
                line, newline, rest = buffer.partition(b"\n")
                if not newline:
                    break
                buffer = rest
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError as exc:
                    raise EventError(
                        f"{target}: invalid JSON on a complete line: {exc}"
                    ) from exc
                validate_event_record(record)
                yield record
            continue  # a burst may already hold more complete lines
        if stop is not None and stop():
            return
        sleep(poll_seconds)


def format_event(record: dict) -> str:
    """One deterministic human-readable line per event."""
    attrs = record["attrs"]
    detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    correlation = (
        f"  ({record['trace_id']}/{record['span_id']})"
        if record["trace_id"] is not None else ""
    )
    parts = [part for part in (record["message"], detail) if part]
    body = f"  {' '.join(parts)}" if parts else ""
    return (
        f"{record['time_seconds']:12.6f} {record['level']:<5} "
        f"{record['name']}{body}{correlation}"
    )
