"""Low-overhead sampling wall-clock profiler.

Spans (:mod:`repro.obs.trace`) time the operations the code *declared*
interesting; the profiler answers the complementary question — where
does interpreter time actually go *between* the span boundaries?  A
:class:`SamplingProfiler` runs one daemon thread that periodically
snapshots the Python call stack of the profiled threads via
:func:`sys._current_frames` and accumulates ``(section, stack) →
count`` aggregates, so the measured code runs at full speed between
samples (no ``sys.setprofile``/``sys.settrace`` hooks, no signals —
safe under worker threads and pools).

Instrumented anchor points — the interpreter step loop, the checker
passes, the inference fixpoint — mark themselves with
:meth:`~SamplingProfiler.section`, a thread-local label stack.  Each
stack sample records the innermost active section, so profile payloads
join the trace vocabulary (``interpreter.step`` samples land under the
same name the span tree shows) and ``repro bench --attribute`` can
cross-reference both.

Like tracing and events, profiling is strictly opt-in: the default
profiler is a :class:`NullProfiler` whose :meth:`~NullProfiler.section`
hands back one shared no-op context manager, pinned by a
micro-benchmark in ``tests/obs/test_profile.py`` to the same bound as
the null tracer — the anchors sit inside the runtime's hot loops.

Payloads are schema-versioned ``PROFILE_<UTCSTAMP>.json`` documents
(:func:`profile_payload` / :func:`validate_profile` /
:func:`read_profile` / :func:`write_profile`), documented in
``docs/BENCHMARKS.md``.  The clock is injectable, so tests produce
byte-deterministic golden payloads.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

#: Bump when the PROFILE_*.json payload layout changes.
PROFILE_SCHEMA = 1

#: Default seconds between stack samples (~200 Hz).
DEFAULT_INTERVAL = 0.005

#: Stacks deeper than this are truncated (leaf-most frames win).
MAX_STACK_DEPTH = 64


class ProfileError(ValueError):
    """A profile payload violated the documented schema."""


def _stack_of(frame, max_depth: int = MAX_STACK_DEPTH) -> tuple[str, ...]:
    """The call stack of ``frame`` as ``module.function`` strings,
    root-most first (flamegraph order).  The walk starts at the leaf
    and follows ``f_back``, so stacks deeper than ``max_depth`` keep
    the leaf-most frames and drop the roots — the right bias for
    self-time aggregation."""
    names: list[str] = []
    while frame is not None and len(names) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        names.append(f"{module}.{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return tuple(names)


class SamplingProfiler:
    """Samples the stacks of profiled threads on a fixed interval.

    ``clock`` stamps the run's wall duration and is injectable for
    deterministic tests; ``frames`` (default :func:`sys._current_frames`)
    supplies the thread-id → frame mapping each sample reads, so tests
    can drive :meth:`sample_now` without a live sampler thread.

    Threads become *profiled* by calling :meth:`start` (registers the
    caller) or by opening a :meth:`section` — pool worker threads that
    enter an instrumented anchor are picked up automatically.
    """

    enabled = True

    def __init__(
        self,
        *,
        interval_seconds: float = DEFAULT_INTERVAL,
        clock: Callable[[], float] = time.perf_counter,
        frames: Callable[[], dict] = sys._current_frames,
        max_depth: int = MAX_STACK_DEPTH,
    ) -> None:
        if interval_seconds <= 0:
            raise ProfileError("interval_seconds must be > 0")
        self.interval_seconds = interval_seconds
        self.clock = clock
        self.max_depth = max_depth
        self._frames = frames
        self._samples: dict[tuple[Optional[str], tuple[str, ...]], int] = {}
        self._sample_count = 0
        self._sections: dict[int, list[str]] = {}
        self._targets: set[int] = set()
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self._duration = 0.0

    # -- instrumentation anchors -----------------------------------------

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Label every sample taken while this thread is inside the
        block; sections nest, the innermost label wins."""
        tid = threading.get_ident()
        stack = self._sections.get(tid)
        if stack is None:
            stack = []
            with self._lock:
                self._sections[tid] = stack
                self._targets.add(tid)
        stack.append(name)
        try:
            yield
        finally:
            stack.pop()

    # -- sampling --------------------------------------------------------

    def sample_now(self) -> int:
        """Take one sample of every profiled thread; returns how many
        stacks were recorded.  The sampler thread calls this on its
        interval; tests call it directly with injected ``frames``."""
        frames = self._frames()
        own = threading.get_ident()
        recorded = 0
        with self._lock:
            targets = set(self._targets)
        for tid in sorted(targets):
            if tid == own and self._thread is not None:
                continue  # never sample the sampler itself
            frame = frames.get(tid)
            if frame is None:
                continue
            sections = self._sections.get(tid)
            try:
                # The profiled thread pushes/pops its section stack
                # without the lock (hot path); the pop can land between
                # the truthiness check and the index.
                section = sections[-1] if sections else None
            except IndexError:
                section = None
            key = (section, _stack_of(frame, self.max_depth))
            with self._lock:
                self._samples[key] = self._samples.get(key, 0) + 1
                self._sample_count += 1
            recorded += 1
        return recorded

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_seconds):
            self.sample_now()

    def start(self) -> "SamplingProfiler":
        """Register the calling thread as profiled and launch the
        sampler thread.  Idempotent."""
        with self._lock:
            self._targets.add(threading.get_ident())
        if self._started_at is None:
            self._started_at = self.clock()
        if self._thread is None:
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread and freeze the run's duration."""
        if self._started_at is not None:
            self._duration += self.clock() - self._started_at
            self._started_at = None
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop_event.set()
            thread.join(timeout=5.0)

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- payload ---------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return self._sample_count

    def samples(self) -> list[dict]:
        """The accumulated aggregates in payload form, deterministic
        order: count descending, then section, then stack."""
        with self._lock:
            items = sorted(
                self._samples.items(),
                key=lambda kv: (-kv[1], kv[0][0] or "", kv[0][1]),
            )
        return [
            {"section": section, "stack": list(stack), "count": count}
            for (section, stack), count in items
        ]

    def payload(
        self,
        *,
        fingerprint: Optional[dict] = None,
        created_utc: Optional[str] = None,
    ) -> dict:
        duration = self._duration
        if self._started_at is not None:  # still running
            duration += self.clock() - self._started_at
        return profile_payload(
            self.samples(),
            interval_seconds=self.interval_seconds,
            duration_seconds=duration,
            fingerprint=fingerprint,
            created_utc=created_utc,
        )


class _NullSection:
    """The shared do-nothing context manager the null profiler hands
    out — one attribute lookup plus one call on the hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SECTION = _NullSection()


class NullProfiler:
    """The disabled profiler: ``section()`` is a shared no-op context
    manager.  Kept deliberately trivial — the anchors sit in the
    interpreter's event loop, the checker, and the inference fixpoint."""

    enabled = False
    interval_seconds = 0.0
    sample_count = 0

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def sample_now(self) -> int:
        return 0

    def samples(self) -> list:
        return []


_NULL_PROFILER = NullProfiler()
_profiler_lock = threading.Lock()
_current_profiler: SamplingProfiler | NullProfiler = _NULL_PROFILER


def get_profiler() -> SamplingProfiler | NullProfiler:
    """The process-wide profiler instrumented anchors report to."""
    return _current_profiler


def set_profiler(
    profiler: Optional[SamplingProfiler | NullProfiler],
) -> SamplingProfiler | NullProfiler:
    """Install ``profiler`` (None restores the no-op default); returns
    the previously installed profiler so callers can restore it."""
    global _current_profiler
    with _profiler_lock:
        previous = _current_profiler
        _current_profiler = (
            profiler if profiler is not None else _NULL_PROFILER
        )
    return previous


@contextmanager
def installed_profiler(
    profiler: SamplingProfiler | NullProfiler,
) -> Iterator[SamplingProfiler | NullProfiler]:
    """Scoped :func:`set_profiler` — the previous profiler is restored
    on exit, so tests and CLI commands cannot leak profiling state."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


# ---------------------------------------------------------------------------
# Payload schema
# ---------------------------------------------------------------------------


def profile_payload(
    samples: Sequence[dict],
    *,
    interval_seconds: float,
    duration_seconds: float,
    fingerprint: Optional[dict] = None,
    created_utc: Optional[str] = None,
) -> dict:
    """The schema-versioned JSON form of one profiling run.  The
    environment fingerprint and timestamp default to the live ones and
    are injectable for byte-stable golden tests."""
    from repro.obs.bench import environment_fingerprint, utc_now

    samples = [dict(sample) for sample in samples]
    return {
        "schema": PROFILE_SCHEMA,
        "kind": "profile",
        "created_utc": created_utc if created_utc is not None else utc_now(),
        "interval_seconds": interval_seconds,
        "duration_seconds": duration_seconds,
        "sample_count": sum(int(s.get("count", 0)) for s in samples),
        "fingerprint": (
            fingerprint if fingerprint is not None
            else environment_fingerprint()
        ),
        "samples": samples,
    }


_FINGERPRINT_KEYS = (
    "python", "implementation", "platform", "machine", "cpu_count", "git_sha",
)


def validate_profile(payload: dict) -> dict:
    """Raise :class:`ProfileError` unless ``payload`` is a well-formed
    profile document (the schema in ``docs/BENCHMARKS.md``); returns
    it.  An *empty* sample list is valid — a fast run can finish before
    the first sampling tick."""
    if not isinstance(payload, dict):
        raise ProfileError("profile payload must be a JSON object")
    if payload.get("schema") != PROFILE_SCHEMA:
        raise ProfileError(
            f"unsupported profile schema {payload.get('schema')!r} "
            f"(speaking {PROFILE_SCHEMA})"
        )
    if payload.get("kind") != "profile":
        raise ProfileError(f"unknown profile kind {payload.get('kind')!r}")
    if not isinstance(payload.get("created_utc"), str):
        raise ProfileError("created_utc must be a string")
    for key in ("interval_seconds", "duration_seconds"):
        value = payload.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise ProfileError(f"{key} must be a non-negative number")
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, dict):
        raise ProfileError("fingerprint must be an object")
    missing = [key for key in _FINGERPRINT_KEYS if key not in fingerprint]
    if missing:
        raise ProfileError(f"fingerprint missing keys {missing}")
    samples = payload.get("samples")
    if not isinstance(samples, list):
        raise ProfileError("samples must be a list")
    total = 0
    for index, sample in enumerate(samples):
        if not isinstance(sample, dict):
            raise ProfileError(f"samples[{index}] must be an object")
        section = sample.get("section")
        if section is not None and not isinstance(section, str):
            raise ProfileError(
                f"samples[{index}]: section must be a string or null"
            )
        stack = sample.get("stack")
        if (
            not isinstance(stack, list)
            or not all(isinstance(fn, str) and fn for fn in stack)
        ):
            raise ProfileError(
                f"samples[{index}]: stack must be a list of non-empty "
                f"strings"
            )
        count = sample.get("count")
        if not isinstance(count, int) or count < 1:
            raise ProfileError(
                f"samples[{index}]: count must be a positive int"
            )
        total += count
    if payload.get("sample_count") != total:
        raise ProfileError(
            f"sample_count {payload.get('sample_count')!r} != summed "
            f"sample counts {total}"
        )
    return payload


def read_profile(path: str | Path) -> dict:
    """Parse and validate one PROFILE json file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ProfileError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return validate_profile(payload)
    except ProfileError as exc:
        raise ProfileError(f"{path}: {exc}") from exc


def dumps_profile(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_profile(payload: dict, path: str | Path | None = None) -> Path:
    """Write ``payload`` to ``path``, defaulting to
    ``PROFILE_<UTCSTAMP>.json`` in the current directory (the same
    trajectory convention as ``BENCH_*.json``)."""
    if path is None:
        stamp = payload["created_utc"].replace("-", "").replace(":", "")
        path = Path.cwd() / f"PROFILE_{stamp}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_profile(payload), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Aggregation and rendering
# ---------------------------------------------------------------------------


def aggregate_profile(payload: dict) -> list[dict]:
    """Per-function rows from a profile payload: ``self_count`` (samples
    where the function was the innermost frame) and ``total_count``
    (samples where it appeared anywhere on the stack, counted once per
    stack).  Rows sorted by self count descending, then total, then
    name — deterministic for identical payloads."""
    totals: dict[str, dict] = {}
    for sample in payload["samples"]:
        stack = sample["stack"]
        count = sample["count"]
        for function in set(stack):
            row = totals.setdefault(
                function,
                {"function": function, "self_count": 0, "total_count": 0},
            )
            row["total_count"] += count
        if stack:
            totals[stack[-1]]["self_count"] += count
    return sorted(
        totals.values(),
        key=lambda r: (-r["self_count"], -r["total_count"], r["function"]),
    )


def section_counts(payload: dict) -> dict[str, int]:
    """Samples per instrumented section (``None`` key rendered as
    ``<unattributed>``) — the join surface with the span vocabulary."""
    counts: dict[str, int] = {}
    for sample in payload["samples"]:
        name = sample["section"] or "<unattributed>"
        counts[name] = counts.get(name, 0) + sample["count"]
    return counts


def format_profile_table(payload: dict, *, limit: int = 30) -> str:
    """Human rendering of one profile payload, deterministic layout:
    the section summary, then the top ``limit`` functions by self
    samples."""
    total = payload["sample_count"]
    lines = [
        f"// {total} samples over {payload['duration_seconds']:.3f}s "
        f"(interval {payload['interval_seconds'] * 1000.0:g}ms)"
    ]
    sections = section_counts(payload)
    if sections:
        width = max(len(name) for name in sections)
        for name in sorted(sections):
            count = sections[name]
            pct = 100.0 * count / total if total else 0.0
            lines.append(f"{name:<{width}}  {count:6d} samples {pct:5.1f}%")
    rows = aggregate_profile(payload)[:limit]
    if rows:
        width = max([len("function")] + [len(r["function"]) for r in rows])
        lines.append(
            f"{'function':<{width}} {'self':>6} {'self%':>6} {'total':>6}"
        )
        for row in rows:
            pct = 100.0 * row["self_count"] / total if total else 0.0
            lines.append(
                f"{row['function']:<{width}} {row['self_count']:6d} "
                f"{pct:5.1f}% {row['total_count']:6d}"
            )
    return "\n".join(lines)
