"""Trace sinks and renderers.

A sink is anything with ``emit(span)``; the tracer calls it once per
*closed* span, children before parents.  Three are provided:

* :class:`RingBufferSink` — keeps the last N finished root span trees in
  memory (the daemon's ``--profile`` and inspection surface);
* :class:`JsonlTraceWriter` — appends one :func:`~repro.obs.trace.span_event`
  JSON object per line to a file.  Writes go through a single
  ``O_APPEND`` file descriptor in one ``os.write`` call each, so
  concurrent threads (and well-behaved cooperating processes) never
  interleave partial lines;
* :func:`format_tree` — a human rendering of one span tree with
  durations and per-phase percentages.

:func:`read_trace` / :func:`validate_trace` are the executable form of
the JSONL schema documented in ``docs/OBSERVABILITY.md``; CI runs them
over the smoke campaign's trace.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import warnings
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.obs.trace import Span, TRACE_SCHEMA, span_event


class RingBufferSink:
    """Keeps the most recent ``capacity`` finished *root* spans."""

    def __init__(self, capacity: int = 64) -> None:
        self._roots: collections.deque[Span] = collections.deque(
            maxlen=capacity
        )
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        if span.parent is None:
            with self._lock:
                self._roots.append(span)

    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()


class CollectingSink:
    """Collects every closed span as a flat :func:`span_event` dict.

    The bench runner's tap: attached to whichever tracer is live for
    the duration of a scenario (via :meth:`Tracer.add_sink`) to build
    per-scenario span self-time tables, then detached.  ``enabled``
    gates collection so the same sink object can stay attached across
    warmup (off) and timed repetitions (on) without re-plumbing."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.enabled = True
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        if self.enabled:
            with self._lock:
                self.events.append(span_event(span))

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class JsonlWriter:
    """Appends one JSON object per line; atomic at line granularity.

    The generic atomic-append machinery: each :meth:`write` serializes
    one object to a single line and pushes it through one ``os.write``
    call on an ``O_APPEND`` descriptor, so concurrent threads (and
    well-behaved cooperating processes) interleave *lines*, never
    *bytes*.  :class:`JsonlTraceWriter` (spans) and
    :class:`repro.obs.events.JsonlEventWriter` (log events) are thin
    adapters over it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        self._lock = threading.Lock()

    def write(self, obj: dict) -> None:
        line = json.dumps(obj, sort_keys=True, separators=(",", ":"))
        data = (line + "\n").encode("utf-8")
        with self._lock:
            if self._fd is not None:
                os.write(self._fd, data)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlTraceWriter(JsonlWriter):
    """Appends one span event per line; atomic at line granularity."""

    def emit(self, span: Span) -> None:
        self.write(span_event(span))


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _format_extras(span: Span) -> str:
    parts: list[str] = []
    for key in sorted(span.attrs):
        parts.append(f"{key}={span.attrs[key]}")
    for key in sorted(span.counters):
        value = span.counters[key]
        rendered = int(value) if value == int(value) else round(value, 6)
        parts.append(f"{key}={rendered}")
    return f"  [{', '.join(parts)}]" if parts else ""


def format_tree(root: Span) -> str:
    """Render one span tree with durations and per-phase percentages.

    Percentages are relative to the *root* span, so a phase list that
    sums to ~100% means the root's time is fully accounted for.
    """
    total = root.duration_seconds or 0.0
    lines: list[str] = []

    def pct(span: Span) -> str:
        if total <= 0.0 or span.duration_seconds is None:
            return "     -"
        return f"{100.0 * span.duration_seconds / total:5.1f}%"

    def ms(span: Span) -> str:
        if span.duration_seconds is None:
            return "   open"
        return f"{span.duration_seconds * 1000.0:9.2f}ms"

    def render(span: Span, prefix: str, branch: str, child_prefix: str) -> None:
        lines.append(
            f"{prefix}{branch}{span.name}  {ms(span)}  {pct(span)}"
            f"{_format_extras(span)}"
        )
        for index, child in enumerate(span.children):
            last = index == len(span.children) - 1
            render(
                child,
                child_prefix,
                "└─ " if last else "├─ ",
                child_prefix + ("   " if last else "│  "),
            )

    render(root, "", "", "")
    return "\n".join(lines)


def build_forest(events: Iterable[dict]) -> list[Span]:
    """Reconstruct renderable span trees from flat trace events —
    including multi-process merged traces.

    Spans link to their parents by ``(trace_id, parent_id)``.  A span
    whose parent id is absent from the stream (worker killed mid-write,
    unmerged per-worker file) is **never dropped**: orphans are grouped
    under one synthetic ``<orphaned>`` root per process (``pid`` key,
    stamped by :func:`repro.obs.propagate.merge_traces`; events without
    one share a single root).  The synthetic root's duration is the sum
    of its children, so :func:`format_tree` percentages stay sane.

    Returns roots in stream order: real roots first, synthetic orphan
    roots after, ordered by pid.
    """
    events = list(events)
    nodes: dict[tuple[str, int], Span] = {}
    for event in events:
        node = Span(
            event["name"],
            dict(event["attrs"]),
            trace_id=event["trace_id"],
            span_id=event["span_id"],
            parent=None,
            start_seconds=float(event["start_seconds"]),
            start_cpu=0.0,
        )
        node.duration_seconds = float(event["duration_seconds"])
        node.cpu_seconds = float(event["cpu_seconds"])
        node.counters = dict(event["counters"])
        nodes[(event["trace_id"], event["span_id"])] = node
    roots: list[Span] = []
    orphans_by_pid: dict[object, list[Span]] = {}
    for event in events:
        node = nodes[(event["trace_id"], event["span_id"])]
        if event["parent_id"] is None:
            roots.append(node)
            continue
        parent = nodes.get((event["trace_id"], event["parent_id"]))
        if parent is not None:
            node.parent = parent
            parent.children.append(node)
        else:
            orphans_by_pid.setdefault(event.get("pid"), []).append(node)
    for pid in sorted(orphans_by_pid, key=lambda p: (p is not None, p)):
        orphans = orphans_by_pid[pid]
        attrs = {} if pid is None else {"pid": pid}
        synthetic = Span(
            "<orphaned>",
            attrs,
            trace_id=orphans[0].trace_id,
            span_id=0,
            parent=None,
            start_seconds=orphans[0].start_seconds,
            start_cpu=0.0,
        )
        synthetic.duration_seconds = sum(
            orphan.duration_seconds or 0.0 for orphan in orphans
        )
        synthetic.cpu_seconds = 0.0
        for orphan in orphans:
            orphan.parent = synthetic
            synthetic.children.append(orphan)
        roots.append(synthetic)
    # A merged trace interleaves children before parents, so children
    # were appended in close order; render them in start order instead.
    for node in nodes.values():
        node.children.sort(key=lambda child: child.start_seconds)
    return roots


def format_forest(events: Iterable[dict]) -> str:
    """Render every tree in a (possibly multi-process) trace, one
    :func:`format_tree` block per root, orphan groups included."""
    return "\n".join(format_tree(root) for root in build_forest(events))


# ---------------------------------------------------------------------------
# Reading traces back
# ---------------------------------------------------------------------------


class TraceError(ValueError):
    """A trace file violated the documented JSONL schema."""


class TraceWarning(UserWarning):
    """A recoverable defect in a JSONL stream (e.g. a truncated final
    line left behind by a crashed writer) that the reader skipped."""


def read_jsonl(
    path: str | Path,
    *,
    validate: Callable[[dict], None],
    error: type = TraceError,
) -> list[dict]:
    """Parse a JSONL file, validating each object with ``validate``.

    A final line with no trailing newline is the signature of a writer
    killed mid-``os.write``; if that line fails to parse or validate it
    is *skipped* with a :class:`TraceWarning` instead of poisoning the
    whole file — every complete line before it is still returned.  Any
    defect on a newline-terminated line still raises ``error``: those
    were complete writes, so corruption there is real.
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = text.splitlines()
    terminated = text.endswith("\n")
    objects: list[dict] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        truncated_tail = number == len(lines) and not terminated
        try:
            obj = json.loads(line)
            validate(obj)
        except (json.JSONDecodeError, ValueError) as exc:
            detail = (
                f"invalid JSON: {exc}"
                if isinstance(exc, json.JSONDecodeError) else str(exc)
            )
            if truncated_tail:
                warnings.warn(
                    f"{path}:{number}: skipping truncated final line "
                    f"(crashed writer?): {detail}",
                    TraceWarning,
                    stacklevel=2,
                )
                break
            raise error(f"{path}:{number}: {detail}") from exc
        objects.append(obj)
    return objects


_REQUIRED_EVENT_KEYS = (
    "schema", "event", "trace_id", "span_id", "parent_id", "name",
    "start_seconds", "duration_seconds", "cpu_seconds", "attrs", "counters",
)


def validate_event(event: dict) -> None:
    """Raise :class:`TraceError` unless ``event`` is a well-formed span
    event (the schema in ``docs/OBSERVABILITY.md``)."""
    if not isinstance(event, dict):
        raise TraceError("trace event must be a JSON object")
    missing = [key for key in _REQUIRED_EVENT_KEYS if key not in event]
    if missing:
        raise TraceError(f"trace event missing keys {missing}")
    if event["schema"] != TRACE_SCHEMA:
        raise TraceError(
            f"unsupported trace schema {event['schema']!r} "
            f"(speaking {TRACE_SCHEMA})"
        )
    if event["event"] != "span":
        raise TraceError(f"unknown trace event kind {event['event']!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise TraceError("span event needs a non-empty name")
    if not isinstance(event["span_id"], int):
        raise TraceError("span_id must be an int")
    if event["parent_id"] is not None and not isinstance(
        event["parent_id"], int
    ):
        raise TraceError("parent_id must be an int or null")
    for key in ("start_seconds", "duration_seconds", "cpu_seconds"):
        if not isinstance(event[key], (int, float)):
            raise TraceError(f"{key} must be a number")
    for key in ("attrs", "counters"):
        if not isinstance(event[key], dict):
            raise TraceError(f"{key} must be an object")


def read_trace(path: str | Path) -> list[dict]:
    """Parse and validate a JSONL trace file into a list of events.

    A truncated final line (crashed writer) is skipped with a
    :class:`TraceWarning`; see :func:`read_jsonl`.
    """

    def check(event: dict) -> None:
        if not isinstance(event, dict):
            raise TraceError("trace event must be a JSON object")
        validate_event(event)

    return read_jsonl(path, validate=check, error=TraceError)


def orphan_events(events: Iterable[dict]) -> list[dict]:
    """Span events whose parent id is absent from the stream — the
    signature of a run (or pool worker) killed before an enclosing span
    could close, or of a per-worker file read on its own (its
    ``remote_parent`` edge points into the *driver's* file)."""
    present: set[tuple[str, int]] = {
        (event["trace_id"], event["span_id"]) for event in events
    }
    return [
        event for event in events
        if event["parent_id"] is not None
        and (event["trace_id"], event["parent_id"]) not in present
    ]


def validate_trace(path: str | Path) -> list[dict]:
    """:func:`read_trace` plus structural checks: the file must be
    non-empty, and spans whose parent never closed (an interrupted run,
    a worker killed mid-write, an unmerged per-worker file) are counted
    in a :class:`TraceWarning` — reported, never dropped; renderers
    group them under a synthetic ``<orphaned>`` root (see
    :func:`build_forest`)."""
    events = read_trace(path)
    if not events:
        raise TraceError(f"{path}: trace file holds no span events")
    orphans = orphan_events(events)
    if orphans:
        traces = sorted({event["trace_id"] for event in orphans})
        warnings.warn(
            f"{path}: {len(orphans)} orphaned span(s) in traces {traces} "
            f"— their parents never closed (interrupted run, killed "
            f"worker, or an unmerged per-worker file); renderers group "
            f"them under a synthetic <orphaned> root",
            TraceWarning,
            stacklevel=2,
        )
    return events


def aggregate_trace(events: Iterable[dict]) -> list[dict]:
    """Per-span-name aggregates for ``repro metrics --trace`` and
    ``repro bench --report``: count, total/mean wall seconds, *exclusive*
    (self) wall seconds, total CPU seconds, summed counters.

    Self time is a span's duration minus the summed durations of its
    direct children — flamegraph-style exclusive time.  Every child
    second is subtracted from exactly one parent, so the per-name self
    times of a trace sum to its root spans' wall time.  Rows come back
    sorted by self time descending, then name, so two runs over the
    same trace render identically and diff cleanly.
    """
    # Appended runs legitimately reuse trace/span ids (each Tracer
    # numbers from 1), so ids alone don't address a span.  Within one
    # run every (trace_id, span_id) appears exactly once and children
    # close — and are written — before their parents, so the k-th
    # occurrence of an id pair belongs to appended run k; keying the
    # child-time sums by (trace_id, span_id, occurrence) keeps runs
    # from stealing each other's child time.
    seen: dict[tuple[str, int], int] = {}
    child_wall: dict[tuple[str, int, int], float] = {}
    totals: dict[str, dict] = {}
    for event in events:
        trace_id, span_id = event["trace_id"], event["span_id"]
        run = seen.get((trace_id, span_id), 0)
        seen[(trace_id, span_id)] = run + 1
        duration = float(event["duration_seconds"])
        self_seconds = duration - child_wall.pop(
            (trace_id, span_id, run), 0.0
        )
        if event["parent_id"] is not None:
            parent_key = (trace_id, event["parent_id"], run)
            child_wall[parent_key] = (
                child_wall.get(parent_key, 0.0) + duration
            )
        entry = totals.setdefault(
            event["name"],
            {"name": event["name"], "count": 0, "wall_seconds": 0.0,
             "self_seconds": 0.0, "cpu_seconds": 0.0, "counters": {}},
        )
        entry["count"] += 1
        entry["wall_seconds"] += duration
        entry["self_seconds"] += self_seconds
        entry["cpu_seconds"] += float(event["cpu_seconds"])
        for key, value in event["counters"].items():
            entry["counters"][key] = entry["counters"].get(key, 0) + value
    out = sorted(
        totals.values(), key=lambda e: (-e["self_seconds"], e["name"])
    )
    for entry in out:
        entry["mean_seconds"] = (
            entry["wall_seconds"] / entry["count"] if entry["count"] else 0.0
        )
    return out


def trace_root_seconds(events: Iterable[dict]) -> float:
    """Summed wall time of every root span — the total a trace's
    per-name self times account for."""
    return sum(
        float(event["duration_seconds"])
        for event in events
        if event["parent_id"] is None
    )


def format_aggregate_table(
    rows: list[dict], *, total_seconds: Optional[float] = None
) -> str:
    """Deterministic table rendering of :func:`aggregate_trace` rows.

    The name/count columns size to their content and every time column
    is fixed-width, so the same trace always renders byte-identically
    and two renderings diff cleanly.  ``total_seconds`` (usually
    :func:`trace_root_seconds`) turns on the ``self%`` column.
    """
    name_width = max([len("span")] + [len(row["name"]) for row in rows])
    count_width = max(
        [len("count")] + [len(str(row["count"])) for row in rows]
    )
    pct_header = f" {'self%':>6}" if total_seconds is not None else ""
    lines = [
        f"{'span':<{name_width}} {'count':>{count_width}} "
        f"{'self ms':>10}{pct_header} {'wall ms':>10} {'mean ms':>10}"
        f"  counters"
    ]
    for row in rows:
        if total_seconds is not None:
            if total_seconds > 0:
                pct = f" {100.0 * row['self_seconds'] / total_seconds:5.1f}%"
            else:
                pct = f" {'-':>6}"
        else:
            pct = ""
        counters = ", ".join(
            f"{key}={_render_counter(value)}"
            for key, value in sorted(row["counters"].items())
        )
        lines.append(
            f"{row['name']:<{name_width}} {row['count']:>{count_width}} "
            f"{row['self_seconds'] * 1000.0:10.2f}{pct} "
            f"{row['wall_seconds'] * 1000.0:10.2f} "
            f"{row['mean_seconds'] * 1000.0:10.2f}  {counters}"
        )
    return "\n".join(lines)


def _render_counter(value) -> str:
    if isinstance(value, (int, float)) and value == int(value):
        return str(int(value))
    return f"{value:.6g}" if isinstance(value, float) else str(value)
