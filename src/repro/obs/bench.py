"""Benchmark harness, perf trajectory, and regression gate.

Three pieces, all built on the tracing substrate (:mod:`repro.obs.trace`):

* a declarative **scenario registry** — named, kind-tagged operations
  (``check``/``infer``/``interpreter-step``/``campaign-shard``/
  ``service-batch``) over the registered apps in
  :mod:`repro.apps.registry`.  Scenarios build lazily, so importing this
  module never loads the checker stack;
* a **runner** with warmup and N timed repetitions producing
  min/median/mean/stddev per scenario, an environment fingerprint
  (python, platform, cpu count, git sha) and a schema-versioned
  ``BENCH_<UTCSTAMP>.json`` payload.  The clock is injectable, so the
  runner is deterministically testable, and every scenario runs under a
  ``bench.<name>`` span so ``repro bench --trace`` composes with the
  rest of the observability surface;
* a **comparator** flagging statistically meaningful regressions: a
  median shift is a regression only when it exceeds the threshold *and*
  the absolute shift exceeds the combined noise (old + new stddev), so
  a noisy scenario cannot trip the gate on jitter alone.

The JSON schema, the scenario registry, and the CI gate built on
``repro bench --compare`` are documented in ``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.obs.trace import Tracer, get_tracer, installed_tracer

#: Bump when the BENCH_*.json payload layout changes.
BENCH_SCHEMA = 1

#: Span names the per-scenario span table excludes: the bench harness's
#: own structural spans, which would otherwise dominate every table.
_HARNESS_SPANS = ("warmup", "repetition")

#: Scenario kinds (the ``kind`` field of a scenario result).
KIND_CHECK = "check"
KIND_INFER = "infer"
KIND_INTERPRETER = "interpreter-step"
KIND_CAMPAIGN = "campaign-shard"
KIND_SERVICE = "service-batch"
KIND_DIST_RING = "dist-ring-step"
KIND_DIST_CAMPAIGN = "dist-campaign-shard"

KINDS = (KIND_CHECK, KIND_INFER, KIND_INTERPRETER, KIND_CAMPAIGN,
         KIND_SERVICE, KIND_DIST_RING, KIND_DIST_CAMPAIGN)

#: Suites a scenario can belong to.  ``small`` is the CI smoke suite;
#: ``full`` is every registered scenario.
SUITES = ("small", "full")

#: Comparison statuses (the ``status`` field of a comparison row).
REGRESSION = "regression"
IMPROVEMENT = "improvement"
WITHIN_NOISE = "within-noise"
MISSING = "missing"
ADDED = "added"

#: Trials one ``campaign-shard`` scenario repetition runs.
SHARD_TRIALS = 4


class BenchError(ValueError):
    """A bench payload violated the documented schema, or a scenario
    name did not resolve against the registry."""


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One named, timed operation.

    ``build()`` runs once per scenario (untimed) and returns the op the
    runner times; the op may return a dict of counters recorded on the
    scenario result (steps, diagnostics, files…).  Keeping the heavy
    imports inside ``build`` means the registry itself is free to
    construct.
    """

    name: str
    kind: str
    suites: tuple[str, ...]
    build: Callable[[], Callable[[], Optional[dict]]]


_REGISTRY: dict[str, Scenario] = {}
_BUILTIN_READY = False


def register_scenario(scenario: Scenario) -> Scenario:
    """Add one scenario to the registry (idempotent per name)."""
    if scenario.kind not in KINDS:
        raise BenchError(
            f"unknown scenario kind {scenario.kind!r}; expected one of "
            f"{KINDS}"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def _check_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.apps.registry import app_source
        from repro.service.pool import timed_check

        source = app_source(app)

        def op() -> dict:
            # timed_check opens parse/resolve/typecheck/check spans, so
            # the per-repetition trace shows the same phases the
            # service reports.
            report, _ = timed_check(source)
            return {"diagnostics": len(report.diagnostics)}

        return op

    return Scenario(f"check/{app}", KIND_CHECK, suites, build)


def _infer_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.apps.registry import app_source
        from repro.infer import infer_annotations
        from repro.lang import (
            parse_program,
            resolve_program,
            typecheck_program,
        )

        source = app_source(app, annotated=False)

        def op() -> dict:
            info = resolve_program(parse_program(source))
            typecheck_program(info)
            result = infer_annotations(info, mode="sinfer", verify=False)
            return {"locations": result.summary.total_locations}

        return op

    return Scenario(f"infer/{app}", KIND_INFER, suites, build)


def _interpreter_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.apps.registry import app_device_factory, load_app
        from repro.runtime import Interpreter, RuntimeOptions

        bundle = load_app(app)
        factory = app_device_factory(app)

        def op() -> dict:
            interp = Interpreter(
                bundle.info,
                factory(),
                options=RuntimeOptions(ignore_errors=True),
            )
            outputs = interp.run()
            return {"steps": interp.steps, "outputs": len(outputs)}

        return op

    return Scenario(f"interpreter-step/{app}", KIND_INTERPRETER, suites, build)


def _campaign_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.apps.registry import app_experiment

        experiment = app_experiment(app, step_budget_factor=64)

        def op() -> dict:
            trials = experiment.run_trials(SHARD_TRIALS, seed=0)
            return {
                "trials": len(trials),
                "diverged": sum(1 for t in trials if t.diverged),
            }

        return op

    return Scenario(f"campaign-shard/{app}", KIND_CAMPAIGN, suites, build)


def _dist_ring_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.dist import dist_app_experiment

        experiment = dist_app_experiment(app)
        rounds = experiment.horizon()

        def op() -> dict:
            # One full clean fabric simulation (every node activated on
            # every round, per-activation engine runs included) — the
            # inner loop every distributed trial pays.
            result = experiment.simulate(rounds)
            return {"rounds": rounds, "steps": result.steps}

        return op

    return Scenario(f"dist-ring-step/{app}", KIND_DIST_RING, suites, build)


def _dist_campaign_scenario(app: str, suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.dist import dist_app_experiment

        experiment = dist_app_experiment(app, step_budget_factor=64)
        experiment.reference()  # cache the clean run outside the timer

        def op() -> dict:
            trials = experiment.run_trials(SHARD_TRIALS, seed=0)
            return {
                "trials": len(trials),
                "diverged": sum(1 for t in trials if t.diverged),
            }

        return op

    return Scenario(
        f"dist-campaign-shard/{app}", KIND_DIST_CAMPAIGN, suites, build
    )


def _service_batch_scenario(suites: tuple[str, ...]) -> Scenario:
    def build() -> Callable[[], dict]:
        from repro.apps.registry import programs_dir
        from repro.service.pool import CheckerPool

        paths = sorted(programs_dir().glob("*.sj"))

        def op() -> dict:
            # A fresh uncached in-process pool per repetition: the cost
            # measured is the batch front end itself, not cache luck.
            results = CheckerPool(max_workers=1, cache=None).check_paths(
                paths
            )
            return {
                "files": len(results),
                "passed": sum(1 for r in results if r.ok),
            }

        return op

    return Scenario("service-batch/apps", KIND_SERVICE, suites, build)


def _ensure_builtin() -> None:
    """Populate the registry with the built-in app scenarios, lazily —
    this touches :mod:`repro.apps`, which must not load at import."""
    global _BUILTIN_READY
    if _BUILTIN_READY:
        return
    _BUILTIN_READY = True
    from repro.apps.registry import APP_NAMES, DIST_APP_NAMES

    small_app = "wind_sensor"
    for app in APP_NAMES:
        suites = ("small", "full") if app == small_app else ("full",)
        register_scenario(_check_scenario(app, suites))
        register_scenario(_infer_scenario(app, suites))
        register_scenario(_interpreter_scenario(app, suites))
        register_scenario(_campaign_scenario(app, suites))
    register_scenario(_service_batch_scenario(("small", "full")))
    small_dist = "herman_bit"
    for app in DIST_APP_NAMES:
        suites = ("small", "full") if app == small_dist else ("full",)
        register_scenario(_dist_ring_scenario(app, suites))
        register_scenario(_dist_campaign_scenario(app, suites))


def scenario_names(suite: str = "full") -> list[str]:
    """Registered scenario names belonging to ``suite``, sorted."""
    _ensure_builtin()
    if suite not in SUITES:
        raise BenchError(f"unknown suite {suite!r}; expected one of {SUITES}")
    return sorted(
        name for name, sc in _REGISTRY.items() if suite in sc.suites
    )


def get_scenario(name: str) -> Scenario:
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY))
        raise BenchError(
            f"unknown scenario {name!r}; available: {available}"
        ) from None


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def _stats(samples: Sequence[float]) -> dict:
    return {
        "min_seconds": min(samples),
        "median_seconds": statistics.median(samples),
        "mean_seconds": statistics.fmean(samples),
        "stddev_seconds": (
            statistics.stdev(samples) if len(samples) > 1 else 0.0
        ),
    }


def scenario_result_from_samples(
    name: str,
    kind: str,
    samples: Sequence[float],
    *,
    counters: Optional[dict] = None,
    warmup: int = 0,
    spans: Optional[Sequence[dict]] = None,
    memory: Optional[dict] = None,
) -> dict:
    """A scenario result from externally measured samples — how the
    paper-figure suites under ``benchmarks/`` feed their
    pytest-benchmark timings into the same JSON schema.  ``spans`` is an
    optional per-span self-time table (see :func:`run_scenario` with
    ``span_table=True``) ready for :func:`attribute_benchmarks`;
    ``memory`` is an optional externally measured ``memory`` section
    (the :func:`run_scenario` ``memory=True`` shape)."""
    if kind not in KINDS:
        raise BenchError(f"unknown scenario kind {kind!r}")
    samples = [float(s) for s in samples]
    if not samples:
        raise BenchError(f"scenario {name!r}: no samples")
    result = {
        "name": name,
        "kind": kind,
        "warmup": warmup,
        "repetitions": len(samples),
        "samples_seconds": samples,
        "counters": {
            k: float(v) for k, v in sorted((counters or {}).items())
        },
        **_stats(samples),
    }
    if spans is not None:
        result["spans"] = list(spans)
    if memory is not None:
        result["memory"] = dict(memory)
    return result


def _span_table(events: Sequence[dict], scenario_name: str) -> list[dict]:
    """Fold collected span events into the scenario's span table:
    per-name occurrence count plus summed self/wall seconds, the bench
    harness's own spans (``warmup``/``repetition``/``bench.<name>``)
    excluded so measured work, not harness structure, tops the table."""
    from repro.obs.sinks import aggregate_trace

    rows = []
    for row in aggregate_trace(events):
        name = row["name"]
        if name in _HARNESS_SPANS or name == f"bench.{scenario_name}":
            continue
        rows.append({
            "name": name,
            "count": row["count"],
            "self_seconds": row["self_seconds"],
            "wall_seconds": row["wall_seconds"],
        })
    return rows


def _memory_section(
    monitor, alloc_samples: Sequence[Optional[int]], gc_before: dict
) -> dict:
    """Fold one scenario's per-repetition allocation peaks and the
    monitor's GC delta into the additive ``memory`` result section."""
    alloc = [int(s) for s in alloc_samples if s is not None]
    gc_after = monitor.gc_snapshot()
    return {
        "peak_rss_bytes": monitor.peak_rss(),
        "alloc_per_rep_bytes": alloc,
        "alloc_peak_bytes": max(alloc) if alloc else None,
        "alloc_median_bytes": (
            float(statistics.median(alloc)) if alloc else None
        ),
        "alloc_stddev_bytes": (
            float(statistics.stdev(alloc)) if len(alloc) > 1 else 0.0
        ),
        "gc_collections": (
            gc_after["collections"] - gc_before["collections"]
        ),
        "gc_pause_seconds_total": (
            gc_after["pause_seconds_total"]
            - gc_before["pause_seconds_total"]
        ),
    }


def run_scenario(
    scenario: Scenario | str,
    *,
    warmup: int = 1,
    repetitions: int = 5,
    clock: Callable[[], float] = time.perf_counter,
    span_table: bool = False,
    memory: bool = False,
    monitor=None,
) -> dict:
    """Build and time one scenario: ``warmup`` untimed runs, then
    ``repetitions`` timed ones.  The whole scenario runs under a root
    ``bench.<name>`` span (one ``repetition`` child per timed run), so
    ``--trace`` shows exactly what was measured.

    With ``span_table=True`` the timed repetitions are additionally
    tapped with a :class:`~repro.obs.sinks.CollectingSink` and the
    result grows a ``spans`` table — per-span-name occurrence counts
    and summed self/wall seconds, the raw material
    :func:`attribute_benchmarks` joins across two payloads.  If no real
    tracer is installed a local one is, scoped to this scenario, so
    ``--attribute`` payloads don't require ``--trace``.

    With ``memory=True`` (or an explicit ``monitor``) the result grows
    an additive ``memory`` section: peak RSS, per-repetition tracemalloc
    allocation peaks with median/stddev, and the GC collections/pauses
    charged to this scenario.  A supplied ``monitor`` is assumed already
    started (``repro bench --mem`` shares one across scenarios so
    ``--mem-json`` also captures section attribution); with ``memory=True``
    alone a scenario-scoped :class:`~repro.obs.resources.ResourceMonitor`
    is started and stopped here.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if repetitions < 1:
        raise BenchError("repetitions must be >= 1")
    from contextlib import ExitStack

    from repro.obs.sinks import CollectingSink

    sink: Optional[CollectingSink] = None
    with ExitStack() as stack:
        if memory and monitor is None:
            from repro.obs.resources import ResourceMonitor

            monitor = stack.enter_context(ResourceMonitor())
        gc_before = monitor.gc_snapshot() if monitor is not None else None
        alloc_samples: list[Optional[int]] = []
        tracer = get_tracer()
        if span_table:
            sink = CollectingSink()
            sink.enabled = False
            if isinstance(tracer, Tracer):
                tracer.add_sink(sink)
                stack.callback(tracer.remove_sink, sink)
            else:
                tracer = stack.enter_context(
                    installed_tracer(Tracer(sinks=(sink,)))
                )
        samples: list[float] = []
        counters: dict = {}
        with tracer.span(
            f"bench.{scenario.name}", kind=scenario.kind
        ) as root:
            op = scenario.build()
            for _ in range(max(0, warmup)):
                with tracer.span("warmup"):
                    op()
            if sink is not None:
                sink.enabled = True
            for index in range(repetitions):
                if monitor is not None:
                    monitor.begin_sample()
                with tracer.span("repetition", index=index):
                    start = clock()
                    returned = op()
                    samples.append(clock() - start)
                if monitor is not None:
                    alloc_samples.append(monitor.end_sample())
                if returned:
                    counters = {
                        k: float(v) for k, v in sorted(returned.items())
                    }
            if sink is not None:
                # Stop collecting before the root closes so the bench.*
                # span never reaches the table even via other sinks.
                sink.enabled = False
            root.count("repetitions", repetitions)
    result = {
        "name": scenario.name,
        "kind": scenario.kind,
        "warmup": max(0, warmup),
        "repetitions": repetitions,
        "samples_seconds": samples,
        "counters": counters,
        **_stats(samples),
    }
    if sink is not None:
        result["spans"] = _span_table(sink.events, scenario.name)
    if monitor is not None:
        result["memory"] = _memory_section(monitor, alloc_samples, gc_before)
    return result


def run_scenarios(
    scenarios: Sequence[Scenario | str],
    *,
    warmup: int = 1,
    repetitions: int = 5,
    clock: Callable[[], float] = time.perf_counter,
    progress: Optional[Callable[[str], None]] = None,
    span_table: bool = False,
    memory: bool = False,
    monitor=None,
) -> list[dict]:
    """Run every scenario in order; results keep the given order."""
    results: list[dict] = []
    for scenario in scenarios:
        name = scenario if isinstance(scenario, str) else scenario.name
        if progress is not None:
            progress(f"bench: {name}")
        results.append(
            run_scenario(
                scenario, warmup=warmup, repetitions=repetitions,
                clock=clock, span_table=span_table,
                memory=memory, monitor=monitor,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Environment fingerprint and payload
# ---------------------------------------------------------------------------


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint() -> dict:
    """Where a bench payload was measured — enough to judge whether two
    payloads are comparable at all."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": _git_sha(),
    }


def utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def bench_payload(
    results: Sequence[dict],
    *,
    suite: Optional[str],
    warmup: int,
    repetitions: int,
    fingerprint: Optional[dict] = None,
    created_utc: Optional[str] = None,
) -> dict:
    """The schema-versioned JSON form of one bench run."""
    return {
        "schema": BENCH_SCHEMA,
        "kind": "bench",
        "created_utc": created_utc if created_utc is not None else utc_now(),
        "suite": suite,
        "warmup": warmup,
        "repetitions": repetitions,
        "fingerprint": (
            fingerprint if fingerprint is not None
            else environment_fingerprint()
        ),
        "scenarios": list(results),
    }


_FINGERPRINT_KEYS = (
    "python", "implementation", "platform", "machine", "cpu_count", "git_sha",
)

_SCENARIO_NUMBER_KEYS = (
    "min_seconds", "median_seconds", "mean_seconds", "stddev_seconds",
)


def validate_bench(payload: dict) -> dict:
    """Raise :class:`BenchError` unless ``payload`` is a well-formed
    bench document (the schema in ``docs/BENCHMARKS.md``); returns it."""
    if not isinstance(payload, dict):
        raise BenchError("bench payload must be a JSON object")
    if payload.get("schema") != BENCH_SCHEMA:
        raise BenchError(
            f"unsupported bench schema {payload.get('schema')!r} "
            f"(speaking {BENCH_SCHEMA})"
        )
    if payload.get("kind") != "bench":
        raise BenchError(f"unknown bench kind {payload.get('kind')!r}")
    if not isinstance(payload.get("created_utc"), str):
        raise BenchError("created_utc must be a string")
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, dict):
        raise BenchError("fingerprint must be an object")
    missing = [key for key in _FINGERPRINT_KEYS if key not in fingerprint]
    if missing:
        raise BenchError(f"fingerprint missing keys {missing}")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise BenchError("scenarios must be a non-empty list")
    seen: set[str] = set()
    for entry in scenarios:
        if not isinstance(entry, dict):
            raise BenchError("each scenario must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise BenchError("scenario needs a non-empty name")
        if name in seen:
            raise BenchError(f"duplicate scenario {name!r}")
        seen.add(name)
        if entry.get("kind") not in KINDS:
            raise BenchError(
                f"scenario {name!r}: unknown kind {entry.get('kind')!r}"
            )
        samples = entry.get("samples_seconds")
        if (
            not isinstance(samples, list)
            or not samples
            or not all(isinstance(s, (int, float)) for s in samples)
        ):
            raise BenchError(
                f"scenario {name!r}: samples_seconds must be a non-empty "
                f"list of numbers"
            )
        if entry.get("repetitions") != len(samples):
            raise BenchError(
                f"scenario {name!r}: repetitions must equal "
                f"len(samples_seconds)"
            )
        for key in _SCENARIO_NUMBER_KEYS:
            if not isinstance(entry.get(key), (int, float)):
                raise BenchError(f"scenario {name!r}: {key} must be a number")
        if not isinstance(entry.get("counters"), dict):
            raise BenchError(f"scenario {name!r}: counters must be an object")
        spans = entry.get("spans")
        if spans is not None:
            # Optional, additive: payloads without span tables stay valid.
            if not isinstance(spans, list):
                raise BenchError(f"scenario {name!r}: spans must be a list")
            for span in spans:
                if not isinstance(span, dict) or not isinstance(
                    span.get("name"), str
                ):
                    raise BenchError(
                        f"scenario {name!r}: each span row needs a name"
                    )
                if not isinstance(span.get("count"), int):
                    raise BenchError(
                        f"scenario {name!r}: span "
                        f"{span.get('name')!r}: count must be an int"
                    )
                for key in ("self_seconds", "wall_seconds"):
                    if not isinstance(span.get(key), (int, float)):
                        raise BenchError(
                            f"scenario {name!r}: span {span['name']!r}: "
                            f"{key} must be a number"
                        )
        memory = entry.get("memory")
        if memory is not None:
            # Optional, additive (like spans): payloads measured before
            # memory telemetry existed stay valid and compare time-only.
            _validate_memory_section(name, memory)
    return payload


def _validate_memory_section(name: str, memory) -> None:
    if not isinstance(memory, dict):
        raise BenchError(f"scenario {name!r}: memory must be an object")
    for key in ("peak_rss_bytes", "alloc_peak_bytes"):
        value = memory.get(key)
        if value is not None and (not isinstance(value, int) or value < 0):
            raise BenchError(
                f"scenario {name!r}: memory.{key} must be a non-negative "
                f"int or null"
            )
    per_rep = memory.get("alloc_per_rep_bytes")
    if not isinstance(per_rep, list) or not all(
        isinstance(s, int) and s >= 0 for s in per_rep
    ):
        raise BenchError(
            f"scenario {name!r}: memory.alloc_per_rep_bytes must be a "
            f"list of non-negative ints"
        )
    median = memory.get("alloc_median_bytes")
    if per_rep:
        if not isinstance(median, (int, float)) or median < 0:
            raise BenchError(
                f"scenario {name!r}: memory.alloc_median_bytes must be a "
                f"non-negative number"
            )
    elif median is not None:
        raise BenchError(
            f"scenario {name!r}: memory.alloc_median_bytes must be null "
            f"without per-rep samples"
        )
    stddev = memory.get("alloc_stddev_bytes")
    if not isinstance(stddev, (int, float)) or stddev < 0:
        raise BenchError(
            f"scenario {name!r}: memory.alloc_stddev_bytes must be a "
            f"non-negative number"
        )
    if not isinstance(memory.get("gc_collections"), int) \
            or memory["gc_collections"] < 0:
        raise BenchError(
            f"scenario {name!r}: memory.gc_collections must be a "
            f"non-negative int"
        )
    pause = memory.get("gc_pause_seconds_total")
    if not isinstance(pause, (int, float)) or pause < 0:
        raise BenchError(
            f"scenario {name!r}: memory.gc_pause_seconds_total must be a "
            f"non-negative number"
        )


def read_bench(path: str | Path) -> dict:
    """Parse and validate one BENCH json file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BenchError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return validate_bench(payload)
    except BenchError as exc:
        raise BenchError(f"{path}: {exc}") from exc


def dumps_bench(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_bench(payload: dict, path: str | Path | None = None) -> Path:
    """Write ``payload`` to ``path``, defaulting to
    ``BENCH_<UTCSTAMP>.json`` in the current directory so the perf
    trajectory accumulates at the repo root across runs."""
    if path is None:
        stamp = payload["created_utc"].replace("-", "").replace(":", "")
        path = Path.cwd() / f"BENCH_{stamp}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_bench(payload), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Comparator — the regression gate
# ---------------------------------------------------------------------------


def compare_benchmarks(
    old: dict, new: dict, threshold_pct: float = 10.0
) -> dict:
    """Compare two bench payloads scenario by scenario.

    A median shift is *meaningful* only when its magnitude exceeds the
    combined sample noise (``stddev_old + stddev_new``); a meaningful
    shift beyond ``threshold_pct`` is a regression (slower) or an
    improvement (faster), anything else is within noise.  Scenarios the
    baseline has but the new run lacks are ``missing`` — the gate fails
    on them, because silently dropping coverage must not pass.

    Scenarios carrying a ``memory`` section in *both* payloads are
    additionally judged on their median per-repetition allocation peak,
    under the exact same rule with the noise envelope in bytes
    (``alloc_stddev_bytes`` old + new); memory regressions fail the
    gate like time regressions.  Payloads without memory telemetry
    compare time-only — no error, no memory rows.
    """
    validate_bench(old)
    validate_bench(new)
    if threshold_pct < 0:
        raise BenchError("threshold_pct must be >= 0")
    old_by = {s["name"]: s for s in old["scenarios"]}
    new_by = {s["name"]: s for s in new["scenarios"]}
    rows: list[dict] = []
    for name in sorted(old_by):
        old_s = old_by[name]
        row = {
            "name": name,
            "old_median_seconds": old_s["median_seconds"],
            "new_median_seconds": None,
            "delta_pct": None,
            "noise_seconds": None,
            "status": MISSING,
        }
        new_s = new_by.get(name)
        if new_s is not None:
            old_med = float(old_s["median_seconds"])
            new_med = float(new_s["median_seconds"])
            noise = float(old_s["stddev_seconds"]) + float(
                new_s["stddev_seconds"]
            )
            meaningful = abs(new_med - old_med) > noise
            delta_pct = (
                (new_med - old_med) / old_med * 100.0 if old_med > 0 else None
            )
            if delta_pct is None:
                # degenerate zero baseline: any meaningful time is slower
                status = REGRESSION if (meaningful and new_med > 0) \
                    else WITHIN_NOISE
            elif meaningful and delta_pct > threshold_pct:
                status = REGRESSION
            elif meaningful and delta_pct < -threshold_pct:
                status = IMPROVEMENT
            else:
                status = WITHIN_NOISE
            row.update(
                new_median_seconds=new_med,
                delta_pct=delta_pct,
                noise_seconds=noise,
                status=status,
            )
        rows.append(row)
    for name in sorted(set(new_by) - set(old_by)):
        rows.append({
            "name": name,
            "old_median_seconds": None,
            "new_median_seconds": new_by[name]["median_seconds"],
            "delta_pct": None,
            "noise_seconds": None,
            "status": ADDED,
        })
    regressions = [r["name"] for r in rows if r["status"] == REGRESSION]
    improvements = [r["name"] for r in rows if r["status"] == IMPROVEMENT]
    missing = [r["name"] for r in rows if r["status"] == MISSING]
    memory_rows = _compare_memory(old_by, new_by, float(threshold_pct))
    memory_regressions = [
        r["name"] for r in memory_rows if r["status"] == REGRESSION
    ]
    return {
        "threshold_pct": float(threshold_pct),
        "rows": rows,
        "regressions": regressions,
        "improvements": improvements,
        "missing": missing,
        "added": [r["name"] for r in rows if r["status"] == ADDED],
        "memory_rows": memory_rows,
        "memory_regressions": memory_regressions,
        "memory_improvements": [
            r["name"] for r in memory_rows if r["status"] == IMPROVEMENT
        ],
        "ok": not regressions and not missing and not memory_regressions,
    }


def _compare_memory(
    old_by: dict, new_by: dict, threshold_pct: float
) -> list[dict]:
    """Memory comparison rows for scenarios whose *both* sides carry a
    ``memory`` section with allocation samples — the same meaningful-
    shift rule as the time gate, with the noise envelope in bytes."""
    rows: list[dict] = []
    for name in sorted(set(old_by) & set(new_by)):
        old_m = old_by[name].get("memory")
        new_m = new_by[name].get("memory")
        if not isinstance(old_m, dict) or not isinstance(new_m, dict):
            continue
        old_med = old_m.get("alloc_median_bytes")
        new_med = new_m.get("alloc_median_bytes")
        if old_med is None or new_med is None:
            continue
        old_med, new_med = float(old_med), float(new_med)
        noise = float(old_m.get("alloc_stddev_bytes", 0.0)) + float(
            new_m.get("alloc_stddev_bytes", 0.0)
        )
        meaningful = abs(new_med - old_med) > noise
        delta_pct = (
            (new_med - old_med) / old_med * 100.0 if old_med > 0 else None
        )
        if delta_pct is None:
            status = REGRESSION if (meaningful and new_med > 0) \
                else WITHIN_NOISE
        elif meaningful and delta_pct > threshold_pct:
            status = REGRESSION
        elif meaningful and delta_pct < -threshold_pct:
            status = IMPROVEMENT
        else:
            status = WITHIN_NOISE
        rows.append({
            "name": name,
            "old_alloc_median_bytes": old_med,
            "new_alloc_median_bytes": new_med,
            "old_peak_rss_bytes": old_m.get("peak_rss_bytes"),
            "new_peak_rss_bytes": new_m.get("peak_rss_bytes"),
            "delta_pct": delta_pct,
            "noise_bytes": noise,
            "status": status,
        })
    return rows


# ---------------------------------------------------------------------------
# Span-diff attribution
# ---------------------------------------------------------------------------


def attribute_benchmarks(
    old: dict, new: dict, *, threshold_pct: float = 10.0
) -> dict:
    """Attribute each scenario's median shift to the spans that moved.

    Joins two bench payloads carrying per-scenario ``spans`` tables
    (``repro bench --spans``, or :func:`run_scenario` with
    ``span_table=True``).  Span self times are normalized to
    per-repetition seconds before differencing, so payloads measured
    with different repetition counts still compare.  A span's shift is
    kept only when its magnitude exceeds the scenario's combined sample
    noise (``stddev_old + stddev_new`` — the ``--compare`` envelope);
    surviving spans are ranked by absolute shift, largest first, with
    ties broken by name, so the output is deterministic.  This ranking
    is the evidence the ROADMAP's 10x backend claim will be judged by.
    """
    comparison = compare_benchmarks(old, new, threshold_pct=threshold_pct)
    status_by = {row["name"]: row for row in comparison["rows"]}
    old_by = {s["name"]: s for s in old["scenarios"]}
    new_by = {s["name"]: s for s in new["scenarios"]}
    scenarios: list[dict] = []
    unattributed: list[str] = []
    for name in sorted(set(old_by) & set(new_by)):
        old_s, new_s = old_by[name], new_by[name]
        if old_s.get("spans") is None or new_s.get("spans") is None:
            unattributed.append(name)
            continue
        old_reps = max(1, int(old_s["repetitions"]))
        new_reps = max(1, int(new_s["repetitions"]))
        old_self = {
            row["name"]: float(row["self_seconds"]) / old_reps
            for row in old_s["spans"]
        }
        new_self = {
            row["name"]: float(row["self_seconds"]) / new_reps
            for row in new_s["spans"]
        }
        noise = float(old_s["stddev_seconds"]) + float(
            new_s["stddev_seconds"]
        )
        delta_median = float(new_s["median_seconds"]) - float(
            old_s["median_seconds"]
        )
        rows: list[dict] = []
        excluded = 0
        for span_name in sorted(set(old_self) | set(new_self)):
            old_sec = old_self.get(span_name, 0.0)
            new_sec = new_self.get(span_name, 0.0)
            delta = new_sec - old_sec
            # Floor the envelope at 1ns/rep: a zero-stddev payload pair
            # must not attribute float rounding residue as a shift.
            if abs(delta) <= max(noise, 1e-9):
                excluded += 1
                continue
            rows.append({
                "name": span_name,
                "old_self_seconds": old_sec,
                "new_self_seconds": new_sec,
                "delta_seconds": delta,
                "share_pct": (
                    delta / delta_median * 100.0 if delta_median != 0 else None
                ),
            })
        rows.sort(key=lambda r: (-abs(r["delta_seconds"]), r["name"]))
        scenarios.append({
            "name": name,
            "status": status_by[name]["status"],
            "old_median_seconds": float(old_s["median_seconds"]),
            "new_median_seconds": float(new_s["median_seconds"]),
            "delta_seconds": delta_median,
            "delta_pct": status_by[name]["delta_pct"],
            "noise_seconds": noise,
            "spans": rows,
            "excluded_within_noise": excluded,
        })
    return {
        "threshold_pct": float(threshold_pct),
        "scenarios": scenarios,
        "unattributed": unattributed,
        "missing": comparison["missing"],
        "added": comparison["added"],
    }


def format_attribution(attribution: dict) -> str:
    """Human rendering of one attribution document, deterministic."""
    lines: list[str] = []
    for scenario in attribution["scenarios"]:
        delta = (
            f"{scenario['delta_pct']:+.1f}%"
            if scenario["delta_pct"] is not None else "n/a"
        )
        lines.append(
            f"{scenario['name']}: {_ms(scenario['old_median_seconds']).strip()}"
            f" -> {_ms(scenario['new_median_seconds']).strip()} ms "
            f"({delta}, {scenario['status']})"
        )
        if not scenario["spans"]:
            lines.append(
                "  (no span shifted beyond the noise envelope; "
                f"{scenario['excluded_within_noise']} within noise)"
            )
            continue
        width = max(len(row["name"]) for row in scenario["spans"])
        for rank, row in enumerate(scenario["spans"], start=1):
            share = (
                f"{row['share_pct']:+6.1f}% of shift"
                if row["share_pct"] is not None else "   n/a"
            )
            lines.append(
                f"  #{rank} {row['name']:<{width}} "
                f"{row['old_self_seconds'] * 1000.0:9.2f} -> "
                f"{row['new_self_seconds'] * 1000.0:9.2f} ms/rep "
                f"({row['delta_seconds'] * 1000.0:+9.2f})  {share}"
            )
        if scenario["excluded_within_noise"]:
            lines.append(
                f"  ({scenario['excluded_within_noise']} span(s) within "
                f"the ±{scenario['noise_seconds'] * 1000.0:.2f} ms noise "
                f"envelope excluded)"
            )
    for label, names in (
        ("no span table (rerun with --spans)", attribution["unattributed"]),
        ("missing from new run", attribution["missing"]),
        ("added in new run", attribution["added"]),
    ):
        if names:
            lines.append(f"// {label}: {', '.join(names)}")
    if not attribution["scenarios"]:
        lines.append("// no scenario carried span tables in both payloads")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _ms(seconds: Optional[float]) -> str:
    return "        -" if seconds is None else f"{seconds * 1000.0:9.2f}"


def _kib(value) -> str:
    return "        -" if value is None else f"{value / 1024.0:9.1f}"


def format_bench_table(payload: dict) -> str:
    """Human rendering of one bench payload, deterministic layout.
    Memory columns (median alloc peak per rep, process peak RSS) appear
    only when at least one scenario carries a ``memory`` section, so
    time-only payloads render byte-identically to older builds."""
    scenarios = payload["scenarios"]
    with_memory = any(s.get("memory") for s in scenarios)
    width = max([len("scenario")] + [len(s["name"]) for s in scenarios])
    memory_head = f" {'alloc KiB':>9} {'rss MiB':>8}" if with_memory else ""
    lines = [
        f"{'scenario':<{width}} {'reps':>4} {'min ms':>9} {'median ms':>9} "
        f"{'mean ms':>9} {'stddev ms':>9}{memory_head}  counters"
    ]
    for entry in scenarios:
        counters = ", ".join(
            f"{key}={_render_count(value)}"
            for key, value in sorted(entry["counters"].items())
        )
        memory_cells = ""
        if with_memory:
            memory = entry.get("memory") or {}
            rss = memory.get("peak_rss_bytes")
            rss_text = (
                "       -" if rss is None else f"{rss / 1048576.0:8.1f}"
            )
            memory_cells = (
                f" {_kib(memory.get('alloc_median_bytes'))} {rss_text}"
            )
        lines.append(
            f"{entry['name']:<{width}} {entry['repetitions']:4d} "
            f"{_ms(entry['min_seconds'])} {_ms(entry['median_seconds'])} "
            f"{_ms(entry['mean_seconds'])} {_ms(entry['stddev_seconds'])}"
            f"{memory_cells}  {counters}"
        )
    return "\n".join(lines)


def _render_count(value: float) -> str:
    return str(int(value)) if value == int(value) else f"{value:.6g}"


def format_comparison(comparison: dict) -> str:
    """Human rendering of one comparison, deterministic layout."""
    rows = comparison["rows"]
    width = max([len("scenario")] + [len(r["name"]) for r in rows])
    lines = [
        f"{'scenario':<{width}} {'old ms':>9} {'new ms':>9} {'delta':>8}  "
        f"status"
    ]
    for row in rows:
        delta = (
            f"{row['delta_pct']:+7.1f}%" if row["delta_pct"] is not None
            else "       -"
        )
        lines.append(
            f"{row['name']:<{width}} {_ms(row['old_median_seconds'])} "
            f"{_ms(row['new_median_seconds'])} {delta}  {row['status']}"
        )
    lines.append(
        f"// threshold ±{comparison['threshold_pct']:g}%: "
        f"{len(comparison['regressions'])} regression(s), "
        f"{len(comparison['improvements'])} improvement(s), "
        f"{len(comparison['missing'])} missing, "
        f"{len(comparison['added'])} added"
    )
    # Name the symmetric difference outright — "1 missing" alone sends
    # the reader diffing two JSON files to learn which scenario vanished.
    if comparison["missing"]:
        lines.append(
            f"// missing from new run: {', '.join(comparison['missing'])}"
        )
    if comparison["added"]:
        lines.append(
            f"// added in new run: {', '.join(comparison['added'])}"
        )
    memory_rows = comparison.get("memory_rows") or []
    if memory_rows:
        width = max(
            [len("scenario")] + [len(r["name"]) for r in memory_rows]
        )
        lines.append(
            f"{'scenario':<{width}} {'old KiB':>9} {'new KiB':>9} "
            f"{'delta':>8}  memory status"
        )
        for row in memory_rows:
            delta = (
                f"{row['delta_pct']:+7.1f}%"
                if row["delta_pct"] is not None else "       -"
            )
            lines.append(
                f"{row['name']:<{width}} "
                f"{row['old_alloc_median_bytes'] / 1024.0:9.1f} "
                f"{row['new_alloc_median_bytes'] / 1024.0:9.1f} "
                f"{delta}  {row['status']}"
            )
        lines.append(
            f"// memory (median alloc peak/rep, same ±"
            f"{comparison['threshold_pct']:g}% + byte-noise envelope): "
            f"{len(comparison.get('memory_regressions') or [])} "
            f"regression(s), "
            f"{len(comparison.get('memory_improvements') or [])} "
            f"improvement(s)"
        )
    return "\n".join(lines)
