"""repro.obs — dependency-free observability for the checking stack.

Three pieces (see ``docs/OBSERVABILITY.md``):

* **tracing** (:mod:`repro.obs.trace`) — nested spans with wall/CPU
  time, attributes and counters; thread-local context; a no-op tracer
  so instrumented hot paths cost ~nothing when tracing is off;
* **metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges and fixed-bucket histograms with Prometheus text and
  JSON snapshot expositions;
* **sinks** (:mod:`repro.obs.sinks`) — an in-memory ring buffer, an
  atomic-append JSON-lines trace writer, and a human span-tree
  renderer;
* **bench** (:mod:`repro.obs.bench`) — a declarative benchmark registry
  and runner over the registered apps, the schema-versioned
  ``BENCH_*.json`` perf trajectory, and the regression-gate comparator
  behind ``repro bench --compare`` (see ``docs/BENCHMARKS.md``).

The CLI surfaces all of it: ``--trace FILE`` writes a JSONL trace,
``--profile`` prints the span tree, ``repro metrics`` renders a
snapshot from a trace file or a running daemon, and ``repro bench``
runs, compares, and reports benchmarks.
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchError,
    Scenario,
    bench_payload,
    compare_benchmarks,
    environment_fingerprint,
    read_bench,
    register_scenario,
    run_scenario,
    run_scenarios,
    scenario_names,
    scenario_result_from_samples,
    validate_bench,
    write_bench,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.sinks import (
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    aggregate_trace,
    format_aggregate_table,
    format_tree,
    read_trace,
    trace_root_seconds,
    validate_trace,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    installed_tracer,
    set_tracer,
    span_event,
    timed_span,
)

__all__ = [
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "BENCH_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "SNAPSHOT_QUANTILES",
    "BenchError",
    "Scenario",
    "bench_payload",
    "compare_benchmarks",
    "environment_fingerprint",
    "read_bench",
    "register_scenario",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
    "scenario_result_from_samples",
    "validate_bench",
    "write_bench",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "JsonlTraceWriter",
    "RingBufferSink",
    "TraceError",
    "aggregate_trace",
    "format_aggregate_table",
    "trace_root_seconds",
    "format_tree",
    "read_trace",
    "validate_trace",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "installed_tracer",
    "set_tracer",
    "span_event",
    "timed_span",
]
