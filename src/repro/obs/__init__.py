"""repro.obs — dependency-free observability for the checking stack.

Three pieces (see ``docs/OBSERVABILITY.md``):

* **tracing** (:mod:`repro.obs.trace`) — nested spans with wall/CPU
  time, attributes and counters; thread-local context; a no-op tracer
  so instrumented hot paths cost ~nothing when tracing is off;
* **metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges and fixed-bucket histograms with Prometheus text and
  JSON snapshot expositions;
* **sinks** (:mod:`repro.obs.sinks`) — an in-memory ring buffer, an
  atomic-append JSON-lines trace writer, and a human span-tree
  renderer;
* **events** (:mod:`repro.obs.events`) — a leveled, sampled,
  trace-correlated structured event log with JSONL persistence, an
  in-memory ring buffer, and a stdlib ``logging`` bridge;
* **propagate** (:mod:`repro.obs.propagate`) — W3C-traceparent-style
  trace-context propagation across process boundaries (campaign
  driver → pool workers, client → daemon) and the ``merge_traces``
  stitcher that turns per-worker files into one causal trace;
* **exporter** (:mod:`repro.obs.exporter`) — a dependency-free HTTP
  thread serving ``/metrics`` (Prometheus text), ``/healthz`` and
  ``/events`` for ``repro serve --http-port`` and long campaign
  drives;
* **bench** (:mod:`repro.obs.bench`) — a declarative benchmark registry
  and runner over the registered apps, the schema-versioned
  ``BENCH_*.json`` perf trajectory, the regression-gate comparator
  behind ``repro bench --compare``, and the span-diff attribution
  engine behind ``repro bench --attribute`` (see
  ``docs/BENCHMARKS.md``);
* **profile** (:mod:`repro.obs.profile`) — a low-overhead sampling
  wall-clock profiler with instrumented anchors in the interpreter
  step loop, the checker, and the inference fixpoint, emitting
  schema-versioned ``PROFILE_*.json`` payloads (``--profile-json``);
* **resources** (:mod:`repro.obs.resources`) — memory & resource
  telemetry: peak-RSS sampling, tracemalloc allocation attribution to
  the span/section vocabulary, GC pause tracking via ``gc.callbacks``,
  and cache-occupancy watching, emitting schema-versioned
  ``MEM_*.json`` payloads (``repro bench --mem`` / ``--mem-json``);
* **history** (:mod:`repro.obs.history`) — the bench history store:
  per-scenario trend series over a directory of ``BENCH_*.json`` with
  a noise-aware changepoint detector (``repro bench trend``);
* **report** (:mod:`repro.obs.report`) — the deterministic single-file
  HTML dashboard behind ``repro report --html`` (convergence curves,
  shard timeline, event and bench tables).

The CLI surfaces all of it: ``--trace FILE`` writes a JSONL trace,
``--events FILE`` writes a JSONL event stream, ``--profile`` prints the
span tree, ``repro metrics`` renders a snapshot from a trace file or a
running daemon, ``repro events`` tails/filters an event stream, ``repro
report`` renders the HTML dashboard, and ``repro bench`` runs,
compares, and reports benchmarks.
"""

from repro.obs.bench import (
    BENCH_SCHEMA,
    BenchError,
    Scenario,
    attribute_benchmarks,
    bench_payload,
    compare_benchmarks,
    environment_fingerprint,
    format_attribution,
    read_bench,
    register_scenario,
    run_scenario,
    run_scenarios,
    scenario_names,
    scenario_result_from_samples,
    validate_bench,
    write_bench,
)
from repro.obs.history import (
    HistoryWarning,
    bench_trend,
    detect_changepoints,
    env_key,
    format_trend_table,
    load_history,
    trend_series,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    NullProfiler,
    ProfileError,
    SamplingProfiler,
    aggregate_profile,
    format_profile_table,
    get_profiler,
    installed_profiler,
    profile_payload,
    read_profile,
    section_counts,
    set_profiler,
    validate_profile,
    write_profile,
)
from repro.obs.events import (
    EVENTS_SCHEMA,
    LEVELS,
    EventBuffer,
    EventError,
    EventLog,
    JsonlEventWriter,
    LoggingBridge,
    NullEventLog,
    filter_events,
    follow_events,
    format_event,
    get_event_log,
    installed_event_log,
    read_events,
    set_event_log,
    validate_events,
)
from repro.obs.exporter import (
    MetricsExporter,
    NullExporter,
    maybe_exporter,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    render_report,
    write_report,
)
from repro.obs.resources import (
    RESOURCES_SCHEMA,
    NullResourceMonitor,
    ResourceError,
    ResourceMonitor,
    format_resources_table,
    get_resource_monitor,
    installed_resource_monitor,
    peak_rss_bytes,
    read_resources,
    resources_payload,
    set_resource_monitor,
    validate_resources,
    write_resources,
)
from repro.obs.propagate import (
    PropagationError,
    TraceContext,
    current_context,
    merge_traces,
    shard_trace_payload,
    worker_traced,
)
from repro.obs.sinks import (
    JsonlTraceWriter,
    JsonlWriter,
    RingBufferSink,
    TraceError,
    TraceWarning,
    aggregate_trace,
    build_forest,
    read_jsonl,
    format_aggregate_table,
    format_forest,
    format_tree,
    orphan_events,
    read_trace,
    trace_root_seconds,
    validate_trace,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    installed_tracer,
    set_tracer,
    span_event,
    timed_span,
)

__all__ = [
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "BENCH_SCHEMA",
    "EVENTS_SCHEMA",
    "REPORT_SCHEMA",
    "render_report",
    "write_report",
    "LEVELS",
    "EventBuffer",
    "EventError",
    "EventLog",
    "JsonlEventWriter",
    "LoggingBridge",
    "NullEventLog",
    "filter_events",
    "follow_events",
    "format_event",
    "get_event_log",
    "installed_event_log",
    "read_events",
    "set_event_log",
    "validate_events",
    "MetricsExporter",
    "NullExporter",
    "maybe_exporter",
    "PropagationError",
    "TraceContext",
    "current_context",
    "merge_traces",
    "shard_trace_payload",
    "worker_traced",
    "JsonlWriter",
    "TraceWarning",
    "read_jsonl",
    "DEFAULT_TIME_BUCKETS",
    "SNAPSHOT_QUANTILES",
    "BenchError",
    "Scenario",
    "attribute_benchmarks",
    "format_attribution",
    "HistoryWarning",
    "bench_trend",
    "detect_changepoints",
    "env_key",
    "format_trend_table",
    "load_history",
    "trend_series",
    "PROFILE_SCHEMA",
    "NullProfiler",
    "ProfileError",
    "SamplingProfiler",
    "aggregate_profile",
    "format_profile_table",
    "get_profiler",
    "installed_profiler",
    "profile_payload",
    "read_profile",
    "section_counts",
    "set_profiler",
    "validate_profile",
    "write_profile",
    "RESOURCES_SCHEMA",
    "NullResourceMonitor",
    "ResourceError",
    "ResourceMonitor",
    "format_resources_table",
    "get_resource_monitor",
    "installed_resource_monitor",
    "peak_rss_bytes",
    "read_resources",
    "resources_payload",
    "set_resource_monitor",
    "validate_resources",
    "write_resources",
    "bench_payload",
    "compare_benchmarks",
    "environment_fingerprint",
    "read_bench",
    "register_scenario",
    "run_scenario",
    "run_scenarios",
    "scenario_names",
    "scenario_result_from_samples",
    "validate_bench",
    "write_bench",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "JsonlTraceWriter",
    "RingBufferSink",
    "TraceError",
    "aggregate_trace",
    "build_forest",
    "format_aggregate_table",
    "trace_root_seconds",
    "format_forest",
    "format_tree",
    "orphan_events",
    "read_trace",
    "validate_trace",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "installed_tracer",
    "set_tracer",
    "span_event",
    "timed_span",
]
