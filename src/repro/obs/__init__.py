"""repro.obs — dependency-free observability for the checking stack.

Three pieces (see ``docs/OBSERVABILITY.md``):

* **tracing** (:mod:`repro.obs.trace`) — nested spans with wall/CPU
  time, attributes and counters; thread-local context; a no-op tracer
  so instrumented hot paths cost ~nothing when tracing is off;
* **metrics** (:mod:`repro.obs.metrics`) — a process-wide registry of
  counters, gauges and fixed-bucket histograms with Prometheus text and
  JSON snapshot expositions;
* **sinks** (:mod:`repro.obs.sinks`) — an in-memory ring buffer, an
  atomic-append JSON-lines trace writer, and a human span-tree
  renderer.

The CLI surfaces all of it: ``--trace FILE`` writes a JSONL trace,
``--profile`` prints the span tree, and ``repro metrics`` renders a
snapshot from a trace file or a running daemon.
"""

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.sinks import (
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    aggregate_trace,
    format_tree,
    read_trace,
    validate_trace,
)
from repro.obs.trace import (
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    installed_tracer,
    set_tracer,
    span_event,
    timed_span,
)

__all__ = [
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "JsonlTraceWriter",
    "RingBufferSink",
    "TraceError",
    "aggregate_trace",
    "format_tree",
    "read_trace",
    "validate_trace",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "installed_tracer",
    "set_tracer",
    "span_event",
    "timed_span",
]
