"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, dependency-free metric
store with two exposition formats:

* :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict carrying a
  ``schema`` version, the form the daemon's ``metrics`` op returns;
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``# TYPE``/``# HELP`` comments, ``_bucket``/
  ``_sum``/``_count`` series for histograms), so a scraper pointed at a
  dump of the daemon needs no translation layer.

Metric names are flat (``repro_cache_memory_hits``); histograms use
fixed bucket boundaries chosen at registration, which keeps observation
O(#buckets) with no allocation.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Optional, Sequence

#: Bump when the snapshot layout changes.  2 added estimated p50/p95/p99
#: quantiles to every histogram entry.
METRICS_SCHEMA = 2

#: The quantiles every histogram snapshot estimates.
SNAPSHOT_QUANTILES = (0.50, 0.95, 0.99)

#: Latency buckets (seconds) suited to checker phases and pool tasks:
#: sub-millisecond cache hits up to multi-second campaign shards.
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, cache size…)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram (cumulative buckets, Prometheus-style)."""

    __slots__ = ("name", "help", "boundaries", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        boundaries: Sequence[float],
        lock: threading.Lock,
    ) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted, non-empty")
        self.name = name
        self.help = help
        self.boundaries = tuple(float(b) for b in boundaries)
        #: per-bucket (non-cumulative) counts; index len(boundaries) is +Inf
        self._counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """[(upper_bound_label, cumulative_count), …] ending with +Inf."""
        out: list[tuple[str, int]] = []
        running = 0
        for boundary, count in zip(self.boundaries, self._counts):
            running += count
            out.append((format_bound(boundary), running))
        out.append(("+Inf", running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """*Estimated* value at quantile ``q`` in [0, 1].

        Linear interpolation inside the cumulative bucket holding the
        target rank — the standard Prometheus ``histogram_quantile``
        estimate, accurate to bucket resolution, not to the raw
        observations (which are never stored).  Observations beyond the
        last boundary clamp to it.  ``None`` until something is
        observed.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return None
        target = q * total
        cumulative = 0.0
        lower = 0.0
        for boundary, count in zip(self.boundaries, counts):
            if count > 0 and cumulative + count >= target:
                fraction = max(0.0, target - cumulative) / count
                return lower + fraction * (boundary - lower)
            cumulative += count
            lower = boundary
        # target rank sits in the open +Inf bucket: the top boundary is
        # the best (under-)estimate available.
        return self.boundaries[-1]

    def quantiles(self) -> dict[str, Optional[float]]:
        """The snapshot quantile estimates, keyed ``p50``/``p95``/``p99``."""
        return {
            f"p{int(q * 100)}": self.quantile(q) for q in SNAPSHOT_QUANTILES
        }


def format_bound(bound: float) -> str:
    """Prometheus-style bucket label: no trailing zeros, no exponent."""
    text = f"{bound:.12f}".rstrip("0").rstrip(".")
    return text if text else "0"


class MetricsRegistry:
    """A named family of counters, gauges and histograms.

    Registration is get-or-create: asking twice for the same name (and
    kind) returns the same metric, so instrumented modules never need to
    coordinate.  Asking for an existing name with a different kind is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- registration ----------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(name, help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(name, help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            self._validate_name(name)
            metric = Histogram(name, help, buckets, threading.Lock())
            self._metrics[name] = metric
            return metric

    def _register(self, name: str, help: str, kind: type):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            self._validate_name(name)
            metric = kind(name, help, threading.Lock())
            self._metrics[name] = metric
            return metric

    @staticmethod
    def _validate_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")

    # -- exposition ------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every registered metric."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in sorted(metrics, key=lambda m: m.name):
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            else:
                histograms[metric.name] = {
                    "buckets": {
                        label: count
                        for label, count in metric.cumulative_buckets()
                    },
                    "sum": metric.sum,
                    "count": metric.count,
                    # bucket-interpolated estimates, see Histogram.quantile
                    **metric.quantiles(),
                }
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in sorted(metrics, key=lambda m: m.name):
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {metric.name} counter")
                lines.append(f"{metric.name} {_render_value(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {metric.name} gauge")
                lines.append(f"{metric.name} {_render_value(metric.value)}")
            else:
                lines.append(f"# TYPE {metric.name} histogram")
                for label, count in metric.cumulative_buckets():
                    lines.append(
                        f'{metric.name}_bucket{{le="{label}"}} {count}'
                    )
                lines.append(
                    f"{metric.name}_sum {_render_value(metric.sum)}"
                )
                lines.append(f"{metric.name}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric — test isolation only."""
        with self._lock:
            self._metrics.clear()


def _render_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry instrumented modules report to."""
    return _GLOBAL
