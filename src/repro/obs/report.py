"""The ``repro report`` HTML dashboard.

One dependency-free, deterministic, single-file HTML page summarizing a
stabilization campaign: per-trial convergence curves (inline SVG — the
plateau of each curve is the trial's recovery distance in samples),
the shard timeline, verdict and recovery-histogram tables, the tail of
the structured event stream, and — when ``BENCH_*.json`` files are
supplied — the benchmark trend across them.

Determinism is a hard requirement (the golden test in
``tests/obs/test_report.py`` asserts byte equality): the page embeds no
wall-clock timestamp unless the caller passes ``generated_at``, floats
render through one fixed formatter, every iteration order is explicit
(sorted shard ids, manifest app order, input file order), and the CSS
is a static string.  That is also why this module re-derives campaign
summaries from the manifest dict with plain arithmetic instead of
importing :mod:`repro.runtime.campaign` — the report must render
manifests written by *older* code (telemetry-free trial records) and
must stay importable from :mod:`repro.obs` without dragging the runtime
in.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Bump when the generated page's structure changes incompatibly
#: (embedded as ``data-report-schema`` on ``<body>``).
REPORT_SCHEMA = 1

#: Verdict display order (matches ``runtime.campaign``'s constants
#: without importing them — the report reads manifests, not objects).
_VERDICTS = ("masked", "recovered", "diverged", "timeout", "not-injected")

#: At most this many convergence curves render per app; the rest are
#: counted in a visible note — a silent cap would read as "plotted
#: everything" when it did not.
MAX_CURVES_PER_APP = 24

#: Events shown in the tail table.
EVENT_TAIL = 50

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1b1f23; }
h1, h2, h3 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.75rem 0; font-size: 0.85rem; }
th, td { border: 1px solid #d0d7de; padding: 0.25rem 0.6rem;
         text-align: right; }
th { background: #f6f8fa; }
td.name, th.name { text-align: left; }
.curves { display: flex; flex-wrap: wrap; gap: 0.75rem; }
figure.curve { margin: 0; border: 1px solid #d0d7de; padding: 0.4rem; }
figure.curve figcaption { font-size: 0.75rem; color: #57606a; }
.note { color: #57606a; font-size: 0.85rem; }
svg .convergence { fill: none; stroke: #1a7f37; stroke-width: 1.5; }
svg .divergence { fill: none; stroke: #cf222e; stroke-width: 1.5; }
svg .axis { stroke: #d0d7de; stroke-width: 1; }
svg .track { fill: #f6f8fa; }
svg .cell { fill: #cf222e; }
svg .inject { stroke: #0969da; stroke-dasharray: 2 2; }
svg .bar { fill: #0969da; }
svg .bar.infra-failed { fill: #cf222e; }
svg text { font-size: 9px; fill: #57606a; }
svg .spark { fill: none; stroke: #0969da; stroke-width: 1.5; }
svg .changepoint.regression { fill: #cf222e; stroke: none; }
svg .changepoint.improvement { fill: #1a7f37; stroke: none; }
"""


def _fmt(value) -> str:
    """One fixed rendering per value — the byte-stability choke point."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _esc(value) -> str:
    return html.escape(_fmt(value), quote=True)


def _tag(name: str, body: str, **attrs) -> str:
    rendered = "".join(
        f' {key.replace("_", "-")}="{html.escape(str(val), quote=True)}"'
        for key, val in attrs.items()
        if val is not None
    )
    return f"<{name}{rendered}>{body}</{name}>"


def _table(headers: Sequence[str], rows: Iterable[Sequence], *,
           name_columns: int = 1) -> str:
    def cell(tag: str, index: int, value) -> str:
        css = ' class="name"' if index < name_columns else ""
        return f"<{tag}{css}>{_esc(value)}</{tag}>"

    head = "<tr>" + "".join(
        cell("th", i, h) for i, h in enumerate(headers)
    ) + "</tr>"
    body = "".join(
        "<tr>" + "".join(cell("td", i, v) for i, v in enumerate(row)) + "</tr>"
        for row in rows
    )
    return f"<table>{head}{body}</table>"


def _polyline(series: Sequence[float], *, width: float, height: float,
              top: float, css: str) -> str:
    """Scale ``series`` into the plot box; single points render as a
    short horizontal segment so a one-iteration recovery is visible."""
    peak = max(max(series), 1)
    points = list(series) if len(series) > 1 else [series[0], series[0]]
    step = width / (len(points) - 1)
    coords = " ".join(
        f"{i * step:.2f},{top + height - (value / peak) * height:.2f}"
        for i, value in enumerate(points)
    )
    return f'<polyline class="{css}" points="{coords}" />'


# ---------------------------------------------------------------------------
# Campaign sections
# ---------------------------------------------------------------------------


def _campaign_trials(manifest: dict) -> list[dict]:
    """Completed trial records in deterministic order: sorted shard id,
    then shard-internal order."""
    shards = manifest.get("shards", {})
    trials: list[dict] = []
    for shard_id in sorted(shards):
        record = shards[shard_id]
        if record.get("status") == "done":
            trials.extend(record.get("trials", []))
    return trials


def _config_section(manifest: dict) -> str:
    config = manifest.get("config", {})
    rows = [(key, config[key]) for key in sorted(config)]
    rows.append(("fingerprint", str(manifest.get("fingerprint", ""))[:16]))
    return "<h2>Campaign configuration</h2>" + _table(
        ("parameter", "value"), rows
    )


def _summary_section(manifest: dict, trials: list[dict]) -> str:
    apps = list(manifest.get("config", {}).get("apps", []))
    by_app: dict[str, list[dict]] = {app: [] for app in apps}
    for trial in trials:
        by_app.setdefault(trial["app"], []).append(trial)
    rows = []
    for app in by_app:
        records = by_app[app]
        counts = {v: 0 for v in _VERDICTS}
        for trial in records:
            counts[trial["verdict"]] = counts.get(trial["verdict"], 0) + 1
        injected = len(records) - counts["not-injected"]
        samples = sorted(
            t["recovery_samples"] for t in records
            if t.get("recovery_samples") is not None
        )
        rows.append((
            app, len(records), injected,
            counts["masked"], counts["recovered"], counts["diverged"],
            counts["timeout"],
            samples[len(samples) // 2] if samples else None,
            samples[-1] if samples else None,
        ))
    return "<h2>Verdicts</h2>" + _table(
        ("app", "trials", "injected", "masked", "recovered", "diverged",
         "timeout", "recovery p50", "recovery max"),
        rows,
    )


def _histogram_section(manifest: dict, trials: list[dict]) -> str:
    bin_size = int(manifest.get("config", {}).get("histogram_bin", 8) or 8)
    histogram: dict[str, dict[int, int]] = {}
    for trial in trials:
        samples = trial.get("recovery_samples")
        if samples is None:
            continue
        bucket = (samples // bin_size) * bin_size
        app = histogram.setdefault(trial["app"], {})
        app[bucket] = app.get(bucket, 0) + 1
    if not histogram:
        return ""
    rows = [
        (app, f"[{bucket}, {bucket + bin_size})", count)
        for app in sorted(histogram)
        for bucket, count in sorted(histogram[app].items())
    ]
    return (
        f"<h2>Recovery distance histogram</h2>"
        f'<p class="note">Bin width: {bin_size} output samples.</p>'
        + _table(("app", "samples", "trials"), rows)
    )


def _curve_figure(trial: dict) -> str:
    telemetry = trial.get("telemetry") or {}
    convergence = telemetry.get("convergence")
    divergence = telemetry.get("divergence")
    width, height, top = 150.0, 50.0, 4.0
    lines = [f'<line class="axis" x1="0" y1="{top + height}" '
             f'x2="{width}" y2="{top + height}" />']
    if divergence:
        lines.append(_polyline(
            divergence, width=width, height=height, top=top, css="divergence"
        ))
    if convergence:
        lines.append(_polyline(
            convergence, width=width, height=height, top=top,
            css="convergence",
        ))
    final = convergence[-1] if convergence else None
    svg = _tag(
        "svg", "".join(lines),
        viewBox=f"0 0 {width:g} {height + 2 * top:g}",
        width="150", height="58",
        data_app=trial["app"],
        data_site=trial["site"],
        data_final=final,
        data_recovery_samples=trial.get("recovery_samples"),
    )
    caption = (
        f'site {_esc(trial["site"])} · '
        f'{_esc(trial.get("recovery_samples"))} samples / '
        f'{_esc(trial.get("recovery_iterations"))} iterations'
    )
    return _tag(
        "figure", svg + f"<figcaption>{caption}</figcaption>", **{
            "class": "curve",
        }
    )


def _curves_section(trials: list[dict]) -> str:
    with_curves = [
        t for t in trials if (t.get("telemetry") or {}).get("convergence")
    ]
    if not with_curves:
        return (
            "<h2>Convergence curves</h2>"
            '<p class="note">No recovered trials carry convergence '
            "telemetry (manifest written by a pre-telemetry build?).</p>"
        )
    sections = ["<h2>Convergence curves</h2>",
                '<p class="note">Green: cumulative reference samples '
                "replayed since injection (the plateau is the recovery "
                "distance).  Red: per-iteration divergence-set "
                "size.</p>"]
    by_app: dict[str, list[dict]] = {}
    for trial in with_curves:
        by_app.setdefault(trial["app"], []).append(trial)
    for app in sorted(by_app):
        shown = by_app[app][:MAX_CURVES_PER_APP]
        dropped = len(by_app[app]) - len(shown)
        sections.append(f"<h3>{_esc(app)}</h3>")
        sections.append(_tag(
            "div", "".join(_curve_figure(t) for t in shown), **{
                "class": "curves",
            }
        ))
        if dropped:
            sections.append(
                f'<p class="note">{dropped} more recovered trials not '
                "plotted (cap: "
                f"{MAX_CURVES_PER_APP} curves per app).</p>"
            )
    return "".join(sections)


def _node_figure(trial: dict) -> str:
    """One divergence strip chart: a horizontal track per fabric node,
    fabric rounds left to right, a red cell for every round in which
    that node's committed state differed from the clean reference."""
    matrix = (trial.get("telemetry") or {}).get("node_divergence") or []
    rounds = len(matrix)
    nodes = len(matrix[0]) if matrix else 0
    cell, track_h, gap, label = 5.0, 7.0, 2.0, 26.0
    width = label + rounds * cell
    parts = []
    for i in range(nodes):
        y = i * (track_h + gap)
        parts.append(f'<text x="0" y="{y + track_h - 1:.2f}">n{i}</text>')
        parts.append(
            f'<rect class="track" x="{label:g}" y="{y:.2f}" '
            f'width="{rounds * cell:.2f}" height="{track_h:g}" />'
        )
        for r in range(rounds):
            if matrix[r][i]:
                parts.append(
                    f'<rect class="cell" x="{label + r * cell:.2f}" '
                    f'y="{y:.2f}" width="{cell:g}" height="{track_h:g}" />'
                )
    height = nodes * (track_h + gap)
    injection = trial.get("injection_iteration")
    if injection is not None and rounds:
        x = label + (injection + 0.5) * cell
        parts.append(
            f'<line class="inject" x1="{x:.2f}" y1="0" x2="{x:.2f}" '
            f'y2="{height - gap:.2f}" />'
        )
    svg = _tag(
        "svg", "".join(parts),
        viewBox=f"0 0 {width:g} {height:g}",
        width=f"{width:g}", height=f"{height:g}",
        data_app=trial["app"],
        data_site=trial["site"],
        data_node=trial.get("node"),
        data_nodes=nodes,
        data_rounds=rounds,
    )
    caption = (
        f'site {_esc(trial["site"])} · node {_esc(trial.get("node"))} · '
        f'{_esc(trial["verdict"])}'
    )
    return _tag(
        "figure", svg + f"<figcaption>{caption}</figcaption>", **{
            "class": "curve",
        }
    )


def _nodes_section(trials: list[dict]) -> str:
    """Per-node divergence strips for distributed trials (trials whose
    telemetry carries the ``node_divergence`` matrix)."""
    with_nodes = [
        t for t in trials
        if (t.get("telemetry") or {}).get("node_divergence")
    ]
    if not with_nodes:
        return ""
    sections = [
        "<h2>Per-node divergence</h2>",
        '<p class="note">One strip per fabric node, rounds left to '
        "right; red cells mark rounds where that node's committed state "
        "differs from the clean reference, and the dashed line is the "
        "injection round.</p>",
    ]
    by_app: dict[str, list[dict]] = {}
    for trial in with_nodes:
        by_app.setdefault(trial["app"], []).append(trial)
    for app in sorted(by_app):
        shown = by_app[app][:MAX_CURVES_PER_APP]
        dropped = len(by_app[app]) - len(shown)
        sections.append(f"<h3>{_esc(app)}</h3>")
        sections.append(_tag(
            "div", "".join(_node_figure(t) for t in shown), **{
                "class": "curves",
            }
        ))
        if dropped:
            sections.append(
                f'<p class="note">{dropped} more trials not plotted '
                f"(cap: {MAX_CURVES_PER_APP} strips per app).</p>"
            )
    return "".join(sections)


def _timeline_section(manifest: dict) -> str:
    shards = manifest.get("shards", {})
    if not shards:
        return ""
    rows = []
    for shard_id in sorted(shards):
        record = shards[shard_id]
        obs = record.get("obs", {})
        rss = obs.get("peak_rss_bytes")
        rows.append((
            shard_id,
            record.get("status", "?"),
            obs.get("run_seconds"),
            obs.get("queue_wait_seconds"),
            obs.get("attempts", record.get("attempts")),
            obs.get("timeouts"),
            # Worker-process provenance (distributed tracing, PR 8);
            # manifests from older campaigns simply lack the key.
            obs.get("pid"),
            # Worker peak RSS (memory telemetry, PR 10), MiB.
            None if rss is None else rss / 1048576.0,
        ))
    longest = max(
        (row[2] for row in rows if isinstance(row[2], (int, float))),
        default=0.0,
    ) or 1.0
    bar_height, gap, label_width, bar_width = 12.0, 3.0, 130.0, 320.0
    parts = []
    for index, row in enumerate(rows):
        y = index * (bar_height + gap)
        seconds = row[2] if isinstance(row[2], (int, float)) else longest
        width = max(1.0, bar_width * seconds / longest)
        css = "bar infra-failed" if row[1] == "infra-failed" else "bar"
        parts.append(
            f'<text x="0" y="{y + bar_height - 2:.2f}">{_esc(row[0])}</text>'
            f'<rect class="{css}" x="{label_width:g}" y="{y:.2f}" '
            f'width="{width:.2f}" height="{bar_height:g}" />'
        )
    svg_height = len(rows) * (bar_height + gap)
    svg = _tag(
        "svg", "".join(parts),
        viewBox=f"0 0 {label_width + bar_width:g} {svg_height:g}",
        width=f"{label_width + bar_width:g}", height=f"{svg_height:g}",
        data_shards=len(rows),
    )
    return (
        "<h2>Shard timeline</h2>" + svg + _table(
            ("shard", "status", "run s", "queue s", "attempts", "timeouts",
             "pid", "peak rss MiB"),
            rows, name_columns=2,
        )
    )


# ---------------------------------------------------------------------------
# Events and bench sections
# ---------------------------------------------------------------------------


def _events_section(events: list[dict]) -> str:
    if not events:
        return ""
    counts: dict[tuple[str, str], int] = {}
    for record in events:
        key = (record["name"], record["level"])
        counts[key] = counts.get(key, 0) + 1
    summary = _table(
        ("event", "level", "count"),
        [(name, level, counts[(name, level)])
         for name, level in sorted(counts)],
        name_columns=2,
    )
    tail = events[max(0, len(events) - EVENT_TAIL):]
    tail_table = _table(
        ("seq", "t (s)", "level", "name", "message", "trace", "attrs"),
        [(
            record["seq"], record["time_seconds"], record["level"],
            record["name"], record["message"],
            "" if record["trace_id"] is None
            else f'{record["trace_id"]}/{record["span_id"]}',
            " ".join(
                f"{key}={record['attrs'][key]}"
                for key in sorted(record["attrs"])
            ),
        ) for record in tail],
        name_columns=7,
    )
    return (
        "<h2>Events</h2>" + summary
        + f'<h3>Last {len(tail)} events</h3>' + tail_table
    )


def _chaos_section(events: list[dict]) -> str:
    """The chaos panel: injected-fault and recovery-action summaries,
    from ``chaos.*`` events in the supplied stream.  Empty when no chaos
    events exist, so fault-free reports are byte-identical to builds
    that predate the panel."""
    chaos = [e for e in events if e["name"].startswith("chaos.")]
    if not chaos:
        return ""
    injected: dict[str, int] = {}
    recoveries: dict[tuple[str, str], int] = {}
    oracle_rows: list[tuple] = []
    for record in chaos:
        name = record["name"]
        attrs = record.get("attrs", {})
        if name == "chaos.recovery":
            key = (str(attrs.get("action", "?")), str(attrs.get("site", "?")))
            recoveries[key] = recoveries.get(key, 0) + 1
        elif name == "chaos.oracle":
            oracle_rows.append((
                attrs.get("holds"),
                attrs.get("identical"),
                attrs.get("clean_complete"),
                attrs.get("chaos_complete"),
                attrs.get("infra_failed"),
            ))
        elif "fault" in attrs:
            fault = str(attrs["fault"])
            injected[fault] = injected.get(fault, 0) + 1
    sections = ["<h2>Chaos</h2>"]
    if oracle_rows:
        sections.append(
            '<p class="note">Convergence oracle: a seeded chaos run must '
            "end with statistics identical to the fault-free run.</p>"
        )
        sections.append(_table(
            ("holds", "identical stats", "clean complete", "chaos complete",
             "infra-failed shards"),
            oracle_rows,
            name_columns=0,
        ))
    if injected:
        sections.append("<h3>Injected faults</h3>")
        sections.append(_table(
            ("fault", "count"),
            [(fault, injected[fault]) for fault in sorted(injected)],
        ))
    if recoveries:
        sections.append("<h3>Recovery actions</h3>")
        sections.append(_table(
            ("action", "site", "count"),
            [(action, site, recoveries[(action, site)])
             for action, site in sorted(recoveries)],
            name_columns=2,
        ))
    return "".join(sections)


def _bench_section(benches: list[tuple[str, dict]]) -> str:
    if not benches:
        return ""
    names: list[str] = []
    for _, payload in benches:
        for result in payload.get("scenarios", []):
            if result["name"] not in names:
                names.append(result["name"])
    rows = []
    for name in names:
        row: list[object] = [name]
        for _, payload in benches:
            found = next(
                (r for r in payload.get("scenarios", [])
                 if r["name"] == name),
                None,
            )
            row.append(None if found is None else found["median_seconds"])
        rows.append(tuple(row))
    return "<h2>Benchmark trend</h2>" + _table(
        ("scenario (median s)",) + tuple(label for label, _ in benches),
        rows,
    )


def _memory_section(benches: list[tuple[str, dict]]) -> str:
    """The "Memory" panel: per-scenario allocation and RSS telemetry
    from bench payloads carrying the additive ``memory`` section.
    Empty when no payload has one, so time-only reports stay
    byte-identical to builds that predate memory telemetry."""
    rows = []
    for label, payload in benches:
        for result in payload.get("scenarios", []):
            memory = result.get("memory")
            if not memory:
                continue
            rss = memory.get("peak_rss_bytes")
            alloc_median = memory.get("alloc_median_bytes")
            alloc_peak = memory.get("alloc_peak_bytes")
            rows.append((
                result["name"], label,
                None if alloc_median is None else alloc_median / 1024.0,
                None if alloc_peak is None else alloc_peak / 1024.0,
                None if rss is None else rss / 1048576.0,
                memory.get("gc_collections"),
                None if memory.get("gc_pause_seconds_total") is None
                else memory["gc_pause_seconds_total"] * 1000.0,
            ))
    if not rows:
        return ""
    return (
        "<h2>Memory</h2>"
        '<p class="note">Per-scenario allocation telemetry: median and '
        "max per-repetition tracemalloc peak, process peak RSS at "
        "measurement time, and the GC collections/pauses charged to the "
        "scenario.</p>"
        + _table(
            ("scenario", "payload", "alloc median KiB", "alloc peak KiB",
             "peak RSS MiB", "gc collections", "gc pause ms"),
            rows, name_columns=2,
        )
    )


def _spark_figure(entry: dict) -> str:
    """One perf-trajectory sparkline: the series' medians left to right,
    scaled to the data range, with a dot on every changepoint (red for a
    regression step, green for an improvement)."""
    points = entry["points"]
    medians = [p["median_seconds"] for p in points]
    width, height, top = 150.0, 40.0, 5.0
    low, high = min(medians), max(medians)
    span = (high - low) or 1.0
    xs = (
        [width / 2] if len(medians) == 1
        else [i * width / (len(medians) - 1) for i in range(len(medians))]
    )

    def y_of(value: float) -> float:
        return top + height - (value - low) / span * height

    parts = [f'<line class="axis" x1="0" y1="{top + height:g}" '
             f'x2="{width:g}" y2="{top + height:g}" />']
    if len(medians) > 1:
        coords = " ".join(
            f"{x:.2f},{y_of(v):.2f}" for x, v in zip(xs, medians)
        )
        parts.append(f'<polyline class="spark" points="{coords}" />')
    for cp in entry["changepoints"]:
        index = cp["index"]
        parts.append(
            f'<circle class="changepoint {cp["direction"]}" '
            f'cx="{xs[index]:.2f}" cy="{y_of(medians[index]):.2f}" '
            f'r="2.5" />'
        )
    net = entry.get("net_delta_pct")
    svg = _tag(
        "svg", "".join(parts),
        viewBox=f"0 0 {width:g} {height + 2 * top:g}",
        width="150", height="50",
        data_scenario=entry["scenario"],
        data_env=entry["env"],
        data_points=len(points),
        data_changepoints=len(entry["changepoints"]),
    )
    caption = (
        f'{_esc(entry["scenario"])} · {len(points)} runs · '
        f'net {_esc(None if net is None else f"{net:+.1f}%")}'
    )
    return _tag(
        "figure", svg + f"<figcaption>{caption}</figcaption>", **{
            "class": "curve",
        }
    )


def _memory_spark_figure(entry: dict) -> str:
    """One memory-trajectory sparkline: the series' median allocation
    peaks (points without memory telemetry skipped), memory
    changepoints dotted like the time trend."""
    indexed = [
        (index, p) for index, p in enumerate(entry["points"])
        if p.get("alloc_median_bytes") is not None
    ]
    positions = {index: pos for pos, (index, _) in enumerate(indexed)}
    values = [p["alloc_median_bytes"] for _, p in indexed]
    width, height, top = 150.0, 40.0, 5.0
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    xs = (
        [width / 2] if len(values) == 1
        else [i * width / (len(values) - 1) for i in range(len(values))]
    )

    def y_of(value: float) -> float:
        return top + height - (value - low) / span * height

    parts = [f'<line class="axis" x1="0" y1="{top + height:g}" '
             f'x2="{width:g}" y2="{top + height:g}" />']
    if len(values) > 1:
        coords = " ".join(
            f"{x:.2f},{y_of(v):.2f}" for x, v in zip(xs, values)
        )
        parts.append(f'<polyline class="spark" points="{coords}" />')
    for cp in entry.get("memory_changepoints", []):
        pos = positions.get(cp["index"])
        if pos is None:
            continue
        parts.append(
            f'<circle class="changepoint {cp["direction"]}" '
            f'cx="{xs[pos]:.2f}" cy="{y_of(values[pos]):.2f}" '
            f'r="2.5" />'
        )
    net = entry.get("net_memory_delta_pct")
    svg = _tag(
        "svg", "".join(parts),
        viewBox=f"0 0 {width:g} {height + 2 * top:g}",
        width="150", height="50",
        data_scenario=entry["scenario"],
        data_env=entry["env"],
        data_memory_points=len(values),
        data_changepoints=len(entry.get("memory_changepoints", [])),
    )
    caption = (
        f'{_esc(entry["scenario"])} · {len(values)} runs · '
        f'net {_esc(None if net is None else f"{net:+.1f}%")}'
    )
    return _tag(
        "figure", svg + f"<figcaption>{caption}</figcaption>", **{
            "class": "curve",
        }
    )


def _trend_section(trend: dict) -> str:
    """The perf-trajectory panel: one sparkline per (scenario,
    environment) series over the bench history directory, changepoints
    marked, plus a table of every detected changepoint.  A trend
    document with no series (empty or missing history directory) still
    renders a valid "no history" note instead of vanishing."""
    series = trend.get("series", [])
    if not series:
        missing = trend.get("missing_directory")
        detail = (
            f"history directory {_esc(missing)} does not exist."
            if missing else
            "no bench payloads in the history directory yet — run "
            "<code>repro bench</code> and copy the "
            "<code>BENCH_*.json</code> there."
        )
        return (
            "<h2>Perf trajectory</h2>"
            f'<p class="note">No bench history: {detail}</p>'
        )
    sections = [
        "<h2>Perf trajectory</h2>",
        f'<p class="note">{trend["payloads"]} bench payload(s); one '
        "sparkline per scenario and environment, oldest run left.  Dots "
        "mark changepoints (median shift beyond the noise envelope and "
        f'±{_fmt(trend["threshold_pct"])}%): red regression, green '
        "improvement.</p>",
        _tag("div", "".join(_spark_figure(e) for e in series), **{
            "class": "curves",
        }),
    ]
    cp_rows = [
        (entry["scenario"], cp["created_utc"],
         (cp.get("git_sha") or "")[:12], cp["direction"],
         cp["delta_pct"], cp["baseline_median_seconds"],
         cp["median_seconds"])
        for entry in series
        for cp in entry["changepoints"]
    ]
    if cp_rows:
        sections.append("<h3>Changepoints</h3>")
        sections.append(_table(
            ("scenario", "run", "git sha", "direction", "delta %",
             "baseline median s", "median s"),
            cp_rows, name_columns=4,
        ))
    with_memory = [e for e in series if e.get("memory_points")]
    if with_memory:
        sections.append("<h3>Memory trajectory</h3>")
        sections.append(
            '<p class="note">Median per-repetition allocation peak per '
            "run (runs without memory telemetry skipped); dots mark "
            "memory changepoints under the same noise + threshold "
            "rule, in bytes.</p>"
        )
        sections.append(_tag(
            "div",
            "".join(_memory_spark_figure(e) for e in with_memory),
            **{"class": "curves"},
        ))
        mem_cp_rows = [
            (entry["scenario"], cp["created_utc"],
             (cp.get("git_sha") or "")[:12], cp["direction"],
             cp["delta_pct"], cp["baseline_median_seconds"] / 1024.0,
             cp["median_seconds"] / 1024.0)
            for entry in with_memory
            for cp in entry.get("memory_changepoints", [])
        ]
        if mem_cp_rows:
            sections.append(_table(
                ("scenario", "run", "git sha", "direction", "delta %",
                 "baseline alloc KiB", "alloc KiB"),
                mem_cp_rows, name_columns=4,
            ))
    if trend.get("skipped"):
        sections.append(
            '<p class="note">Skipped unreadable history files: '
            + ", ".join(_esc(s["file"]) for s in trend["skipped"])
            + ".</p>"
        )
    return "".join(sections)


# ---------------------------------------------------------------------------
# Page assembly
# ---------------------------------------------------------------------------


def render_report(
    *,
    campaign: Optional[dict] = None,
    events: Optional[list[dict]] = None,
    benches: Optional[list[tuple[str, dict]]] = None,
    trend: Optional[dict] = None,
    title: str = "Stabilization report",
    generated_at: Optional[str] = None,
) -> str:
    """Render the dashboard; returns the complete HTML document.

    Inputs are plain data (a loaded manifest dict, validated event
    records, ``(label, bench payload)`` pairs), so callers choose the
    I/O; :func:`write_report` wires the CLI's file paths through.
    Identical inputs produce identical bytes — ``generated_at`` is the
    only way a timestamp gets in.
    """
    sections: list[str] = [f"<h1>{_esc(title)}</h1>"]
    if generated_at:
        sections.append(f'<p class="note">Generated: {_esc(generated_at)}</p>')
    if campaign is not None:
        trials = _campaign_trials(campaign)
        sections.append(_config_section(campaign))
        if trials:
            sections.append(_summary_section(campaign, trials))
            sections.append(_curves_section(trials))
            sections.append(_nodes_section(trials))
            sections.append(_histogram_section(campaign, trials))
        else:
            # A manifest with zero completed trials (still running,
            # fully infra-failed, or planned empty) must still render a
            # valid page, not a table of vacuous zeros.
            sections.append(
                "<h2>Verdicts</h2>"
                '<p class="note">No completed trials in this manifest '
                "— nothing to summarize yet.</p>"
            )
        sections.append(_timeline_section(campaign))
    if events:
        sections.append(_chaos_section(events))
        sections.append(_events_section(events))
    if benches:
        sections.append(_bench_section(list(benches)))
        sections.append(_memory_section(list(benches)))
    if trend is not None:
        sections.append(_trend_section(trend))
    # An empty trend document still renders a "no history" note, so a
    # trend input — even a missing directory — counts as content.
    has_trend = trend is not None
    if campaign is None and not events and not benches and not has_trend:
        sections.append(
            '<p class="note">Nothing to report: no campaign manifest, '
            "events file, or bench files supplied.</p>"
        )
    body = "".join(sections)
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head>"
        f'<body data-report-schema="{REPORT_SCHEMA}">{body}</body></html>\n'
    )


def write_report(
    path,
    *,
    campaign_path=None,
    events_path=None,
    bench_paths: Sequence = (),
    history_dir=None,
    trend_threshold: float = 10.0,
    title: str = "Stabilization report",
    generated_at: Optional[str] = None,
) -> str:
    """Load the inputs, render, and write ``path``; returns the HTML."""
    from repro.obs.events import read_events

    campaign = None
    if campaign_path is not None:
        campaign = json.loads(
            Path(campaign_path).read_text(encoding="utf-8")
        )
    events = read_events(events_path) if events_path is not None else None
    benches = [
        (Path(bench).name, json.loads(Path(bench).read_text(encoding="utf-8")))
        for bench in bench_paths
    ]
    trend = None
    if history_dir is not None:
        from repro.obs.history import bench_trend

        if Path(history_dir).is_dir():
            trend = bench_trend(history_dir, threshold_pct=trend_threshold)
        else:
            # A fresh clone has no benchmarks/history/ yet; the report
            # must render a valid "no history" page, not error out.
            trend = {
                "threshold_pct": float(trend_threshold),
                "payloads": 0,
                "files": [],
                "skipped": [],
                "series": [],
                "missing_directory": str(history_dir),
            }
    document = render_report(
        campaign=campaign,
        events=events,
        benches=benches,
        trend=trend,
        title=title,
        generated_at=generated_at,
    )
    Path(path).write_text(document, encoding="utf-8")
    return document
