"""Bench history store: the longitudinal perf trajectory.

``repro bench`` writes one ``BENCH_<UTCSTAMP>.json`` per run;
``--compare`` gates one *pair* of runs.  This module aggregates a whole
directory of payloads (``benchmarks/history/`` in this repo, appended
by the CI bench-smoke job) into per-scenario trend series and runs a
noise-aware changepoint detector over them — the evidence record for
"did that backend actually get 10x faster, and when did it regress".

Series are keyed by ``(scenario, environment)``: payloads measured on a
different interpreter/platform/machine are a different series, never
mixed into one line (:func:`env_key` fingerprints everything except the
git sha, which is what *varies along* a series).

The changepoint rule reuses the ``--compare`` stddev envelope: within a
segment, each new point is compared against the segment's median of
medians; a shift is a changepoint only when it exceeds the noise
envelope (segment median stddev + the point's own stddev) *and* the
percentage threshold.  A changepoint starts a new segment, so a step
change is reported once, not on every subsequent point.

Ingestion is robust by design: a crash-torn, wrong-schema, or
non-bench JSON file in the history directory is *skipped* with a
``bench.history.skipped`` warn event and a :class:`HistoryWarning`
instead of aborting the whole trend — the same tolerance the JSONL
readers give a truncated final line.

Rendered as a table by ``repro bench trend`` and as sparkline panels in
``repro report --html`` (see :mod:`repro.obs.report`); documented in
``docs/BENCHMARKS.md``.
"""

from __future__ import annotations

import hashlib
import json
import statistics
import warnings
from pathlib import Path
from typing import Optional, Sequence

from repro.obs.bench import (
    BenchError,
    IMPROVEMENT,
    REGRESSION,
    read_bench,
)
from repro.obs.events import get_event_log

#: Unicode sparkline ramp for the text trend table.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Fingerprint keys that define a series' environment — everything
#: except ``git_sha``, which is the axis a series varies along.
ENV_KEYS = ("python", "implementation", "platform", "machine", "cpu_count")


class HistoryWarning(UserWarning):
    """A file in the bench history directory was skipped (torn JSON,
    wrong schema, not a bench payload) — reported, never fatal."""


def env_key(fingerprint: dict) -> str:
    """A short stable digest of the measurement environment, used to
    split trend series so cross-machine payloads never mix."""
    material = json.dumps(
        {key: fingerprint.get(key) for key in ENV_KEYS}, sort_keys=True
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Ingestion
# ---------------------------------------------------------------------------


def load_history(
    directory: str | Path, *, pattern: str = "*.json"
) -> tuple[list[tuple[str, dict]], list[dict]]:
    """Read every bench payload under ``directory``.

    Returns ``(payloads, skipped)``: ``payloads`` is a list of
    ``(filename, payload)`` pairs in trend order (``created_utc``, then
    filename, so two runs in the same second still order
    deterministically); ``skipped`` records each unreadable file with
    its reason.  Skips are surfaced as a warn-level
    ``bench.history.skipped`` event and a :class:`HistoryWarning` —
    one torn file must not take down the whole trajectory."""
    directory = Path(directory)
    if not directory.is_dir():
        raise BenchError(f"{directory}: not a directory")
    payloads: list[tuple[str, dict]] = []
    skipped: list[dict] = []
    for path in sorted(directory.glob(pattern)):
        if not path.is_file():
            continue
        try:
            payloads.append((path.name, read_bench(path)))
        except (BenchError, OSError, UnicodeDecodeError) as exc:
            reason = str(exc)
            skipped.append({"file": path.name, "reason": reason})
            get_event_log().emit(
                "bench.history.skipped",
                "unreadable bench payload skipped",
                level="warn",
                file=path.name,
                reason=reason,
            )
            warnings.warn(
                f"{path}: skipping unreadable bench payload: {reason}",
                HistoryWarning,
                stacklevel=2,
            )
    payloads.sort(key=lambda item: (item[1]["created_utc"], item[0]))
    return payloads, skipped


# ---------------------------------------------------------------------------
# Trend series and changepoints
# ---------------------------------------------------------------------------


def trend_series(payloads: Sequence[tuple[str, dict]]) -> list[dict]:
    """Fold payloads into per-``(scenario, environment)`` series, each a
    chronological list of points.  Series come back sorted by scenario
    name then environment key — deterministic for identical inputs."""
    series: dict[tuple[str, str], dict] = {}
    for filename, payload in payloads:
        fingerprint = payload["fingerprint"]
        key_env = env_key(fingerprint)
        for scenario in payload["scenarios"]:
            key = (scenario["name"], key_env)
            entry = series.setdefault(
                key,
                {
                    "scenario": scenario["name"],
                    "kind": scenario["kind"],
                    "env": key_env,
                    "points": [],
                },
            )
            memory = scenario.get("memory") or {}
            alloc_median = memory.get("alloc_median_bytes")
            entry["points"].append({
                "file": filename,
                "created_utc": payload["created_utc"],
                "git_sha": fingerprint.get("git_sha"),
                "median_seconds": float(scenario["median_seconds"]),
                "stddev_seconds": float(scenario["stddev_seconds"]),
                "repetitions": int(scenario["repetitions"]),
                # Memory telemetry (PR 10) is additive: points from
                # payloads without a memory section carry nulls.
                "alloc_median_bytes": (
                    None if alloc_median is None else float(alloc_median)
                ),
                "alloc_stddev_bytes": float(
                    memory.get("alloc_stddev_bytes") or 0.0
                ),
                "peak_rss_bytes": memory.get("peak_rss_bytes"),
            })
    return [series[key] for key in sorted(series)]


def detect_changepoints(
    points: Sequence[dict],
    *,
    threshold_pct: float = 10.0,
    value_key: str = "median_seconds",
    noise_key: str = "stddev_seconds",
) -> list[dict]:
    """Changepoints in one chronological point series.

    Segment-based: each point is judged against the *current segment*
    (every point since the last changepoint) — shift beyond the noise
    envelope (median segment stddev + the point's stddev, the
    ``--compare`` rule) **and** beyond ``threshold_pct`` of the segment
    median.  A detected changepoint starts a new segment at that point.

    ``value_key``/``noise_key`` select the judged metric: the defaults
    give the wall-time trend, and the memory trend runs the same
    detector over ``alloc_median_bytes``/``alloc_stddev_bytes`` — one
    rule, two units.  The emitted ``baseline_median_seconds``/
    ``median_seconds``/``noise_seconds`` fields carry whichever metric
    was judged.
    """
    if threshold_pct < 0:
        raise BenchError("threshold_pct must be >= 0")
    changepoints: list[dict] = []
    segment_start = 0
    for index in range(1, len(points)):
        segment = points[segment_start:index]
        base_median = statistics.median(
            p[value_key] for p in segment
        )
        base_noise = statistics.median(
            p[noise_key] for p in segment
        )
        point = points[index]
        delta = point[value_key] - base_median
        noise = base_noise + point[noise_key]
        if base_median <= 0:
            continue
        delta_pct = delta / base_median * 100.0
        if abs(delta) > noise and abs(delta_pct) > threshold_pct:
            changepoints.append({
                "index": index,
                "file": point["file"],
                "created_utc": point["created_utc"],
                "git_sha": point.get("git_sha"),
                "direction": REGRESSION if delta > 0 else IMPROVEMENT,
                "delta_pct": delta_pct,
                "baseline_median_seconds": base_median,
                "median_seconds": point[value_key],
                "noise_seconds": noise,
            })
            segment_start = index
    return changepoints


def bench_trend(
    directory: str | Path,
    *,
    threshold_pct: float = 10.0,
    pattern: str = "*.json",
    scenarios: Optional[Sequence[str]] = None,
) -> dict:
    """The full trend document over a history directory: every series
    with its changepoints (time, and memory where points carry
    allocation telemetry), plus the skip record.  ``scenarios`` filters
    the series to the named scenarios (``repro bench trend --scenario``)
    — unknown names raise, so a typo cannot read as "no data"."""
    payloads, skipped = load_history(directory, pattern=pattern)
    series = trend_series(payloads)
    if scenarios:
        wanted = set(scenarios)
        known = {entry["scenario"] for entry in series}
        unknown = sorted(wanted - known)
        if unknown:
            raise BenchError(
                f"no history for scenario(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(known)) or '(none)'}"
            )
        series = [e for e in series if e["scenario"] in wanted]
    for entry in series:
        points = entry["points"]
        entry["changepoints"] = detect_changepoints(
            points, threshold_pct=threshold_pct
        )
        first = points[0]["median_seconds"]
        last = points[-1]["median_seconds"]
        entry["net_delta_pct"] = (
            (last - first) / first * 100.0 if first > 0 else None
        )
        # The memory trend: the same detector over the subseries of
        # points that carry allocation telemetry, changepoint indexes
        # mapped back to positions in the full point list.
        mem_indexed = [
            (index, p) for index, p in enumerate(points)
            if p.get("alloc_median_bytes") is not None
        ]
        mem_points = [p for _, p in mem_indexed]
        memory_changepoints = detect_changepoints(
            mem_points,
            threshold_pct=threshold_pct,
            value_key="alloc_median_bytes",
            noise_key="alloc_stddev_bytes",
        )
        for cp in memory_changepoints:
            cp["index"] = mem_indexed[cp["index"]][0]
        entry["memory_changepoints"] = memory_changepoints
        entry["memory_points"] = len(mem_points)
        if mem_points:
            first_mem = mem_points[0]["alloc_median_bytes"]
            last_mem = mem_points[-1]["alloc_median_bytes"]
            entry["net_memory_delta_pct"] = (
                (last_mem - first_mem) / first_mem * 100.0
                if first_mem > 0 else None
            )
        else:
            entry["net_memory_delta_pct"] = None
    return {
        "threshold_pct": float(threshold_pct),
        "payloads": len(payloads),
        "files": [filename for filename, _ in payloads],
        "skipped": skipped,
        "series": series,
    }


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def sparkline(values: Sequence[float]) -> str:
    """A fixed-alphabet unicode sparkline: min→``▁``, max→``█``; a flat
    series renders mid-ramp so it reads as "no movement"."""
    if not values:
        return ""
    low, high = min(values), max(values)
    if high <= low:
        return SPARK_BLOCKS[3] * len(values)
    span = high - low
    top = len(SPARK_BLOCKS) - 1
    return "".join(
        SPARK_BLOCKS[round((value - low) / span * top)] for value in values
    )


def _mark_changepoints(changepoints: list[dict]) -> str:
    return " ".join(
        f"i{cp['index']}:{cp['delta_pct']:+.1f}%" for cp in changepoints
    ) or "-"


def format_trend_table(trend: dict) -> str:
    """Deterministic text rendering of one trend document: one row per
    series with a sparkline of medians and its changepoints marked.
    When any series carries memory telemetry, a memory sparkline column
    (median alloc peak per rep) is appended — time-only histories keep
    the original layout byte for byte."""
    series = trend["series"]
    if not series:
        return "// no bench payloads in the history directory"
    with_memory = any(s.get("memory_points") for s in series)
    width = max([len("scenario")] + [len(s["scenario"]) for s in series])
    memory_head = "  mem trend   mem changepoints" if with_memory else ""
    lines = [
        f"{'scenario':<{width}} {'env':<12} {'n':>3} {'first ms':>9} "
        f"{'last ms':>9} {'net':>8}  trend       changepoints"
        f"{memory_head}"
    ]
    for entry in series:
        points = entry["points"]
        medians = [p["median_seconds"] for p in points]
        net = entry["net_delta_pct"]
        net_text = f"{net:+7.1f}%" if net is not None else "       -"
        memory_cells = ""
        if with_memory:
            allocs = [
                p["alloc_median_bytes"] for p in points
                if p.get("alloc_median_bytes") is not None
            ]
            memory_cells = (
                f"  {sparkline(allocs) or '-':<11} "
                f"{_mark_changepoints(entry.get('memory_changepoints', []))}"
            )
        lines.append(
            f"{entry['scenario']:<{width}} {entry['env']:<12} "
            f"{len(points):3d} {medians[0] * 1000.0:9.2f} "
            f"{medians[-1] * 1000.0:9.2f} {net_text}  "
            f"{sparkline(medians):<11} "
            f"{_mark_changepoints(entry['changepoints'])}"
            f"{memory_cells}"
        )
    regressions = sum(
        1 for s in series for cp in s["changepoints"]
        if cp["direction"] == REGRESSION
    )
    improvements = sum(
        1 for s in series for cp in s["changepoints"]
        if cp["direction"] == IMPROVEMENT
    )
    lines.append(
        f"// {trend['payloads']} payload(s), {len(series)} series, "
        f"threshold ±{trend['threshold_pct']:g}%: {regressions} "
        f"regression changepoint(s), {improvements} improvement "
        f"changepoint(s), {len(trend['skipped'])} file(s) skipped"
    )
    if with_memory:
        mem_regressions = sum(
            1 for s in series for cp in s.get("memory_changepoints", [])
            if cp["direction"] == REGRESSION
        )
        mem_improvements = sum(
            1 for s in series for cp in s.get("memory_changepoints", [])
            if cp["direction"] == IMPROVEMENT
        )
        mem_points = sum(s.get("memory_points", 0) for s in series)
        lines.append(
            f"// memory: {mem_points} point(s) with allocation "
            f"telemetry, {mem_regressions} regression changepoint(s), "
            f"{mem_improvements} improvement changepoint(s)"
        )
    return "\n".join(lines)
