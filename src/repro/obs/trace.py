"""Structured tracing: nested spans with wall/CPU time and counters.

A :class:`Span` records one timed operation — a checker pass, an
inference phase, a service request, a campaign shard.  Spans nest: the
:class:`Tracer` keeps a *thread-local* stack of open spans, so two
service handler threads tracing concurrently each grow their own
well-nested tree and never interleave.

Tracing is opt-in.  The default tracer is a :class:`NullTracer` whose
``span()`` hands back one shared no-op object, so instrumented hot paths
(the checker pipeline, injection trials, the inference fixpoint) cost a
single attribute lookup and a method call when tracing is disabled —
``tests/obs/test_trace.py`` pins that overhead with a micro-benchmark.

When a span *closes* it is emitted to every configured sink (see
:mod:`repro.obs.sinks`): children close before their parents, so a
streamed JSONL trace always ends each tree with its closed root span.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

#: Bump when the span event layout (``span_event``) changes.
TRACE_SCHEMA = 1


class Span:
    """One timed, named, attributed operation in a trace tree."""

    __slots__ = (
        "name", "attrs", "counters", "children", "parent",
        "trace_id", "span_id", "start_seconds", "duration_seconds",
        "_start_cpu", "cpu_seconds", "remote_parent",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        *,
        trace_id: str,
        span_id: int,
        parent: Optional["Span"],
        start_seconds: float,
        start_cpu: float,
        remote_parent: Optional[int] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.parent = parent
        self.trace_id = trace_id
        self.span_id = span_id
        self.start_seconds = start_seconds
        self._start_cpu = start_cpu
        self.duration_seconds: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        #: Span id of a parent living in *another process* (attached via
        #: :meth:`Tracer.attached`); only ever set on local roots.
        self.remote_parent = remote_parent

    # -- recording -------------------------------------------------------

    def set_attr(self, name: str, value) -> None:
        self.attrs[name] = value

    def count(self, name: str, amount: float = 1) -> None:
        """Accumulate a named counter on this span (steps, cache hits…)."""
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- introspection ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.duration_seconds is not None

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def child_seconds(self) -> dict[str, float]:
        """Summed duration of direct children, keyed by span name —
        the per-phase timings the service reports."""
        totals: dict[str, float] = {}
        for child in self.children:
            if child.duration_seconds is not None:
                totals[child.name] = (
                    totals.get(child.name, 0.0) + child.duration_seconds
                )
        return totals

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Nested JSON form (the ring-buffer/inspection shape; the JSONL
        wire form is the flat :func:`span_event`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_seconds:.6f}s" if self.closed else "open"
        return f"<Span {self.name!r} {state} children={len(self.children)}>"


def span_event(span: Span) -> dict:
    """The flat, one-line JSONL form of one closed span.

    A local root carrying a *remote* parent (a span in another process,
    attached via :meth:`Tracer.attached`) emits that parent's id as its
    ``parent_id`` plus a ``remote_parent: true`` marker, so
    :func:`repro.obs.propagate.merge_traces` knows the id belongs to the
    driver's numbering, not this file's.  Purely local spans emit the
    exact key set they always did — the golden trace stays byte-stable.
    """
    if span.parent is not None:
        parent_id = span.parent.span_id
    else:
        parent_id = span.remote_parent
    event = {
        "schema": TRACE_SCHEMA,
        "event": "span",
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": parent_id,
        "name": span.name,
        "start_seconds": span.start_seconds,
        "duration_seconds": span.duration_seconds,
        "cpu_seconds": span.cpu_seconds,
        "attrs": dict(span.attrs),
        "counters": dict(span.counters),
    }
    if span.parent is None and span.remote_parent is not None:
        event["remote_parent"] = True
    return event


class Tracer:
    """Produces nested spans with thread-local context.

    ``sinks`` is a sequence of objects with an ``emit(span)`` method;
    every span is emitted exactly once, when it closes (children before
    parents).  ``wall_clock``/``cpu_clock`` are injectable so tests can
    produce byte-deterministic traces.
    """

    enabled = True

    def __init__(
        self,
        *,
        sinks: tuple = (),
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
    ) -> None:
        self.sinks = list(sinks)
        self.wall_clock = wall_clock
        self.cpu_clock = cpu_clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_span_id = 0
        self._next_trace_id = 0

    # -- sinks -----------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach ``sink`` (anything with ``emit(span)``) to this live
        tracer — how the bench runner taps an already-installed tracer
        for per-scenario span tables without disturbing its streams."""
        self.sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Detach a sink previously added with :meth:`add_sink`."""
        self.sinks.remove(sink)

    # -- span context ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def attached(self, context) -> Iterator[None]:
        """Attach a remote parent context to this thread.

        ``context`` is anything with ``trace_id``/``span_id`` attributes
        (normally a :class:`repro.obs.propagate.TraceContext` parsed
        from a traceparent string), or ``None`` for a no-op attach.
        While attached, *root* spans this thread opens adopt the remote
        trace id and record the remote span id as their
        :attr:`Span.remote_parent` — the cross-process half of the
        parent chain that :func:`repro.obs.propagate.merge_traces`
        stitches back together.  Non-root spans are untouched.
        """
        previous = getattr(self._local, "remote", None)
        self._local.remote = context
        try:
            yield
        finally:
            self._local.remote = previous

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        remote = (
            getattr(self._local, "remote", None) if parent is None else None
        )
        with self._lock:
            self._next_span_id += 1
            span_id = self._next_span_id
            if parent is not None:
                trace_id = parent.trace_id
            elif remote is not None:
                trace_id = remote.trace_id
            else:
                self._next_trace_id += 1
                trace_id = f"t{self._next_trace_id}"
        span = Span(
            name,
            attrs,
            trace_id=trace_id,
            span_id=span_id,
            parent=parent,
            start_seconds=self.wall_clock(),
            start_cpu=self.cpu_clock(),
            remote_parent=None if remote is None else remote.span_id,
        )
        if parent is not None:
            parent.children.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.duration_seconds = self.wall_clock() - span.start_seconds
            span.cpu_seconds = self.cpu_clock() - span._start_cpu
            stack.pop()
            for sink in self.sinks:
                sink.emit(span)


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    name = "<null>"
    attrs: dict = {}
    counters: dict = {}
    children: list = []
    duration_seconds = None
    cpu_seconds = None
    closed = False
    is_root = False
    remote_parent = None

    def set_attr(self, name: str, value) -> None:
        pass

    def count(self, name: str, amount: float = 1) -> None:
        pass

    def child_seconds(self) -> dict:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: ``span()`` is a shared no-op context manager.

    Kept deliberately trivial — this object sits on every hot path in
    the checker, the inference engine and the injection backends.
    """

    enabled = False
    sinks: list = []

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def attached(self, context) -> _NullSpan:
        # The shared null span doubles as a no-op context manager, so
        # attaching a remote context with tracing off costs one call.
        return _NULL_SPAN


_NULL_TRACER = NullTracer()
_tracer_lock = threading.Lock()
_current_tracer: Tracer | NullTracer = _NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide tracer instrumented code reports to."""
    return _current_tracer


def set_tracer(tracer: Optional[Tracer | NullTracer]) -> Tracer | NullTracer:
    """Install ``tracer`` (None restores the no-op default); returns the
    previously installed tracer so callers can restore it."""
    global _current_tracer
    with _tracer_lock:
        previous = _current_tracer
        _current_tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


@contextmanager
def installed_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Scoped :func:`set_tracer` — the previous tracer is restored on
    exit, so tests and CLI commands cannot leak tracing state."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def timed_span(
    name: str, timings: dict[str, float], **attrs
) -> Iterator[Span | _NullSpan]:
    """Open a span *and* accumulate its wall time into ``timings[name]``.

    Instrumented pipelines report per-phase timings on their wire
    payloads whether or not tracing is enabled; this helper keeps the
    span tree and the timings dict from drifting apart.
    """
    start = time.perf_counter()
    with get_tracer().span(name, **attrs) as span:
        try:
            yield span
        finally:
            timings[name] = (
                timings.get(name, 0.0) + time.perf_counter() - start
            )
