"""Memory & resource telemetry: the heap half of the perf substrate.

Spans, profiles, and the bench trajectory measure *time*; this module
measures what the process *holds* while it runs:

* **peak RSS** via :func:`resource.getrusage` (normalized to bytes —
  Linux reports kilobytes, macOS bytes);
* **allocation snapshots** via :mod:`tracemalloc`, attributed to the
  same section vocabulary the profiler anchors use
  (``interpreter.step``, ``checker.check``, ``infer.fixpoint``,
  ``campaign.shard``), plus per-repetition traced peaks for the bench
  harness's additive ``memory`` section;
* **GC pauses** via :data:`gc.callbacks` — collection counts and
  summed stop-the-world durations, per generation;
* **cache occupancy** — entries/bytes per tier, pulled from registered
  suppliers (the service's :class:`~repro.service.cache.ResultCache`
  exposes ``occupancy()``).

Like tracing, events, and profiling, resource monitoring is strictly
opt-in: the default monitor is a :class:`NullResourceMonitor` whose
``section()`` hands back one shared no-op context manager, pinned by a
micro-benchmark in ``tests/obs/test_resources.py`` beside the null
tracer/event-log/profiler pins — the anchors sit inside the runtime's
hot loops.

Payloads are schema-versioned ``MEM_*.json`` documents
(:func:`resources_payload` / :func:`validate_resources` /
:func:`read_resources` / :func:`write_resources`), written by ``repro
bench --mem-json FILE`` and documented in ``docs/BENCHMARKS.md``.  The
clock and the RSS/allocation suppliers are injectable, so tests produce
byte-deterministic golden payloads.
"""

from __future__ import annotations

import gc
import json
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Optional

#: Bump when the MEM_*.json payload layout changes.
RESOURCES_SCHEMA = 1


class ResourceError(ValueError):
    """A resources payload violated the documented schema."""


def peak_rss_bytes() -> Optional[int]:
    """This process's lifetime peak resident set size in bytes, or
    ``None`` where :mod:`resource` is unavailable.  ``ru_maxrss`` is
    kilobytes on Linux and bytes on macOS — normalized here so payloads
    compare across platforms."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    scale = 1 if sys.platform == "darwin" else 1024
    return int(usage.ru_maxrss) * scale


def _tracemalloc_read() -> tuple[int, int]:
    import tracemalloc

    return tracemalloc.get_traced_memory()


def _tracemalloc_reset() -> None:
    import tracemalloc

    tracemalloc.reset_peak()


class ResourceMonitor:
    """Samples process memory, GC pauses, and section-attributed
    allocations between :meth:`start` and :meth:`stop`.

    ``clock`` stamps GC pauses and the run duration; ``rss_supplier``
    reads peak RSS; ``alloc_read`` returns a ``(current, peak)`` traced
    byte pair (default :func:`tracemalloc.get_traced_memory`) and
    ``alloc_reset`` resets the traced peak — all injectable, so tests
    drive byte-deterministic payloads without touching the real
    allocator.  With ``trace_allocations=False`` tracemalloc is never
    started (the daemon's mode: RSS + GC + caches only) and every
    allocation field reads ``None``.
    """

    enabled = True

    def __init__(
        self,
        *,
        clock: Callable[[], float] = time.perf_counter,
        rss_supplier: Callable[[], Optional[int]] = peak_rss_bytes,
        trace_allocations: bool = True,
        track_gc: bool = True,
        alloc_read: Optional[Callable[[], tuple[int, int]]] = None,
        alloc_reset: Optional[Callable[[], None]] = None,
    ) -> None:
        self.clock = clock
        self.rss_supplier = rss_supplier
        self.trace_allocations = trace_allocations
        self.track_gc = track_gc
        self._alloc_read = alloc_read
        self._alloc_reset = alloc_reset
        self._owns_alloc = trace_allocations and alloc_read is None
        self._lock = threading.Lock()
        self._sections: dict[str, list] = {}  # name -> [count, net_bytes]
        self._caches: dict[str, Callable[[], dict]] = {}
        self._gc_started: dict[int, float] = {}
        self._gc_collections = 0
        self._gc_by_generation: dict[int, int] = {}
        self._gc_pause_total = 0.0
        self._gc_registered = False
        self._tracemalloc_started = False
        self._final_alloc: tuple[Optional[int], Optional[int]] = (None, None)
        self._sample_base: Optional[int] = None
        self._started_at: Optional[float] = None
        self._duration = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ResourceMonitor":
        """Begin monitoring: starts tracemalloc when this monitor traces
        allocations (and nothing else already did) and registers the GC
        callback.  Idempotent."""
        if self._started_at is None:
            self._started_at = self.clock()
        if self._owns_alloc and self._alloc_read is None:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
            self._alloc_read = _tracemalloc_read
            self._alloc_reset = _tracemalloc_reset
        if self.track_gc and not self._gc_registered:
            gc.callbacks.append(self._on_gc)
            self._gc_registered = True
        return self

    def stop(self) -> None:
        """Stop monitoring and freeze the run duration; unregisters the
        GC callback and stops tracemalloc if this monitor started it."""
        if self._started_at is not None:
            self._duration += self.clock() - self._started_at
            self._started_at = None
        if self._gc_registered:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - defensive
                pass
            self._gc_registered = False
        if self._tracemalloc_started:
            import tracemalloc

            if self._alloc_read is not None:
                # Freeze the last reading so payloads rendered after
                # stop() still carry the run's allocation figures.
                current, peak = self._alloc_read()
                self._final_alloc = (int(current), int(peak))
            tracemalloc.stop()
            self._tracemalloc_started = False
            self._alloc_read = None
            self._alloc_reset = None

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- GC pause tracking -----------------------------------------------

    def _on_gc(self, phase: str, info: dict) -> None:
        """The :data:`gc.callbacks` hook: "start" stamps the clock for
        the collecting generation, "stop" folds the pause in."""
        generation = int(info.get("generation", 0))
        if phase == "start":
            self._gc_started[generation] = self.clock()
            return
        started = self._gc_started.pop(generation, None)
        with self._lock:
            self._gc_collections += 1
            self._gc_by_generation[generation] = (
                self._gc_by_generation.get(generation, 0) + 1
            )
            if started is not None:
                self._gc_pause_total += self.clock() - started

    def gc_snapshot(self) -> dict:
        """Cumulative GC totals so far — callers diff two snapshots to
        charge collections/pauses to one scenario or request window."""
        with self._lock:
            return {
                "collections": self._gc_collections,
                "pause_seconds_total": self._gc_pause_total,
                "collections_by_generation": {
                    str(gen): count
                    for gen, count in sorted(self._gc_by_generation.items())
                },
            }

    # -- section attribution ---------------------------------------------

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute the net traced allocation delta of the block to
        ``name`` (the profiler's section vocabulary); without an
        allocation supplier the invocation is still counted."""
        before = self._alloc_read() if self._alloc_read is not None else None
        try:
            yield
        finally:
            net = 0
            if before is not None and self._alloc_read is not None:
                net = self._alloc_read()[0] - before[0]
            with self._lock:
                row = self._sections.setdefault(name, [0, 0])
                row[0] += 1
                row[1] += net

    def sections(self) -> list[dict]:
        """Per-section attribution rows, sorted by name."""
        with self._lock:
            return [
                {
                    "name": name,
                    "count": row[0],
                    "net_alloc_bytes": row[1],
                }
                for name, row in sorted(self._sections.items())
            ]

    # -- per-repetition sampling (the bench harness) ---------------------

    def begin_sample(self) -> None:
        """Reset the traced peak and remember the current baseline; one
        :meth:`end_sample` later yields that window's peak allocation."""
        if self._alloc_read is None:
            self._sample_base = None
            return
        if self._alloc_reset is not None:
            self._alloc_reset()
        self._sample_base = self._alloc_read()[0]

    def end_sample(self) -> Optional[int]:
        """Peak traced bytes allocated above the :meth:`begin_sample`
        baseline, or ``None`` when allocation tracing is off."""
        if self._alloc_read is None or self._sample_base is None:
            return None
        current, peak = self._alloc_read()
        return max(0, int(peak) - int(self._sample_base))

    # -- process-wide reads ----------------------------------------------

    def peak_rss(self) -> Optional[int]:
        value = self.rss_supplier()
        return None if value is None else int(value)

    def alloc_snapshot(self) -> tuple[Optional[int], Optional[int]]:
        """``(current, peak)`` traced bytes; after :meth:`stop`, the
        frozen final reading; ``(None, None)`` when tracing is off."""
        if self._alloc_read is None:
            return self._final_alloc
        current, peak = self._alloc_read()
        return (int(current), int(peak))

    # -- cache occupancy -------------------------------------------------

    def watch_cache(
        self, name: str, supplier: Callable[[], dict]
    ) -> None:
        """Register an occupancy supplier (``() -> {"entries": int,
        "bytes": int}``) reported under ``name`` in the payload."""
        with self._lock:
            self._caches[name] = supplier

    def cache_occupancy(self) -> dict:
        """Entries/bytes per registered cache tier; a supplier that
        raises is reported as zero occupancy — telemetry must never
        break the workload it watches."""
        with self._lock:
            suppliers = dict(self._caches)
        occupancy: dict[str, dict] = {}
        for name in sorted(suppliers):
            try:
                tier = suppliers[name]()
            except Exception:
                tier = {}
            occupancy[name] = {
                "entries": int(tier.get("entries", 0)),
                "bytes": int(tier.get("bytes", 0)),
            }
        return occupancy

    # -- payload ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The monitor's current readings as plain data (no schema
        envelope) — what ``/healthz`` and the Prometheus gauges read."""
        duration = self._duration
        if self._started_at is not None:  # still running
            duration += self.clock() - self._started_at
        current, peak = self.alloc_snapshot()
        return {
            "duration_seconds": duration,
            "peak_rss_bytes": self.peak_rss(),
            "alloc_current_bytes": current,
            "alloc_peak_bytes": peak,
            "gc": self.gc_snapshot(),
            "sections": self.sections(),
            "caches": self.cache_occupancy(),
        }

    def payload(
        self,
        *,
        fingerprint: Optional[dict] = None,
        created_utc: Optional[str] = None,
    ) -> dict:
        return resources_payload(
            self.snapshot(),
            fingerprint=fingerprint,
            created_utc=created_utc,
        )


class _NullSection:
    """The shared do-nothing context manager the null monitor hands
    out — one attribute lookup plus one call on the hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SECTION = _NullSection()

_ZERO_GC = {
    "collections": 0,
    "pause_seconds_total": 0.0,
    "collections_by_generation": {},
}


class NullResourceMonitor:
    """The disabled monitor: ``section()`` is a shared no-op context
    manager.  Kept deliberately trivial — the anchors share the
    profiler's hot-loop placement, so the off state must cost ~nothing
    (pinned in ``tests/obs/test_resources.py``)."""

    enabled = False

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def begin_sample(self) -> None:
        pass

    def end_sample(self) -> None:
        return None

    def gc_snapshot(self) -> dict:
        return dict(_ZERO_GC)

    def sections(self) -> list:
        return []

    def watch_cache(self, name: str, supplier) -> None:
        pass

    def cache_occupancy(self) -> dict:
        return {}

    def peak_rss(self) -> None:
        return None

    def alloc_snapshot(self) -> tuple[None, None]:
        return (None, None)


_NULL_MONITOR = NullResourceMonitor()
_monitor_lock = threading.Lock()
_current_monitor: ResourceMonitor | NullResourceMonitor = _NULL_MONITOR


def get_resource_monitor() -> ResourceMonitor | NullResourceMonitor:
    """The process-wide monitor instrumented anchors report to."""
    return _current_monitor


def set_resource_monitor(
    monitor: Optional[ResourceMonitor | NullResourceMonitor],
) -> ResourceMonitor | NullResourceMonitor:
    """Install ``monitor`` (None restores the no-op default); returns
    the previously installed monitor so callers can restore it."""
    global _current_monitor
    with _monitor_lock:
        previous = _current_monitor
        _current_monitor = (
            monitor if monitor is not None else _NULL_MONITOR
        )
    return previous


@contextmanager
def installed_resource_monitor(
    monitor: ResourceMonitor | NullResourceMonitor,
) -> Iterator[ResourceMonitor | NullResourceMonitor]:
    """Scoped :func:`set_resource_monitor` — the previous monitor is
    restored on exit, so tests and CLI commands cannot leak state."""
    previous = set_resource_monitor(monitor)
    try:
        yield monitor
    finally:
        set_resource_monitor(previous)


# ---------------------------------------------------------------------------
# Payload schema
# ---------------------------------------------------------------------------


def resources_payload(
    snapshot: dict,
    *,
    fingerprint: Optional[dict] = None,
    created_utc: Optional[str] = None,
) -> dict:
    """The schema-versioned JSON form of one monitoring run.  The
    environment fingerprint and timestamp default to the live ones and
    are injectable for byte-stable golden tests."""
    from repro.obs.bench import environment_fingerprint, utc_now

    return {
        "schema": RESOURCES_SCHEMA,
        "kind": "resources",
        "created_utc": created_utc if created_utc is not None else utc_now(),
        "fingerprint": (
            fingerprint if fingerprint is not None
            else environment_fingerprint()
        ),
        "duration_seconds": float(snapshot.get("duration_seconds", 0.0)),
        "peak_rss_bytes": snapshot.get("peak_rss_bytes"),
        "alloc_current_bytes": snapshot.get("alloc_current_bytes"),
        "alloc_peak_bytes": snapshot.get("alloc_peak_bytes"),
        "gc": snapshot.get("gc", dict(_ZERO_GC)),
        "sections": list(snapshot.get("sections", [])),
        "caches": dict(snapshot.get("caches", {})),
    }


_FINGERPRINT_KEYS = (
    "python", "implementation", "platform", "machine", "cpu_count", "git_sha",
)


def _require_optional_nonneg_int(payload: dict, key: str) -> None:
    value = payload.get(key)
    if value is not None and (not isinstance(value, int) or value < 0):
        raise ResourceError(f"{key} must be a non-negative int or null")


def validate_resources(payload: dict) -> dict:
    """Raise :class:`ResourceError` unless ``payload`` is a well-formed
    resources document (the schema in ``docs/BENCHMARKS.md``); returns
    it."""
    if not isinstance(payload, dict):
        raise ResourceError("resources payload must be a JSON object")
    if payload.get("schema") != RESOURCES_SCHEMA:
        raise ResourceError(
            f"unsupported resources schema {payload.get('schema')!r} "
            f"(speaking {RESOURCES_SCHEMA})"
        )
    if payload.get("kind") != "resources":
        raise ResourceError(
            f"unknown resources kind {payload.get('kind')!r}"
        )
    if not isinstance(payload.get("created_utc"), str):
        raise ResourceError("created_utc must be a string")
    fingerprint = payload.get("fingerprint")
    if not isinstance(fingerprint, dict):
        raise ResourceError("fingerprint must be an object")
    missing = [key for key in _FINGERPRINT_KEYS if key not in fingerprint]
    if missing:
        raise ResourceError(f"fingerprint missing keys {missing}")
    duration = payload.get("duration_seconds")
    if not isinstance(duration, (int, float)) or duration < 0:
        raise ResourceError("duration_seconds must be a non-negative number")
    for key in ("peak_rss_bytes", "alloc_current_bytes", "alloc_peak_bytes"):
        _require_optional_nonneg_int(payload, key)
    gc_doc = payload.get("gc")
    if not isinstance(gc_doc, dict):
        raise ResourceError("gc must be an object")
    if not isinstance(gc_doc.get("collections"), int) \
            or gc_doc["collections"] < 0:
        raise ResourceError("gc.collections must be a non-negative int")
    pause = gc_doc.get("pause_seconds_total")
    if not isinstance(pause, (int, float)) or pause < 0:
        raise ResourceError(
            "gc.pause_seconds_total must be a non-negative number"
        )
    by_gen = gc_doc.get("collections_by_generation")
    if not isinstance(by_gen, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in by_gen.items()
    ):
        raise ResourceError(
            "gc.collections_by_generation must map generation -> count"
        )
    sections = payload.get("sections")
    if not isinstance(sections, list):
        raise ResourceError("sections must be a list")
    for index, row in enumerate(sections):
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            raise ResourceError(f"sections[{index}] needs a name")
        if not isinstance(row.get("count"), int) or row["count"] < 0:
            raise ResourceError(
                f"sections[{index}]: count must be a non-negative int"
            )
        if not isinstance(row.get("net_alloc_bytes"), int):
            raise ResourceError(
                f"sections[{index}]: net_alloc_bytes must be an int"
            )
    caches = payload.get("caches")
    if not isinstance(caches, dict):
        raise ResourceError("caches must be an object")
    for name, tier in caches.items():
        if not isinstance(tier, dict):
            raise ResourceError(f"cache {name!r}: tier must be an object")
        for key in ("entries", "bytes"):
            if not isinstance(tier.get(key), int) or tier[key] < 0:
                raise ResourceError(
                    f"cache {name!r}: {key} must be a non-negative int"
                )
    return payload


def read_resources(path: str | Path) -> dict:
    """Parse and validate one MEM json file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ResourceError(f"{path}: invalid JSON: {exc}") from exc
    try:
        return validate_resources(payload)
    except ResourceError as exc:
        raise ResourceError(f"{path}: {exc}") from exc


def dumps_resources(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_resources(payload: dict, path: str | Path | None = None) -> Path:
    """Write ``payload`` to ``path``, defaulting to
    ``MEM_<UTCSTAMP>.json`` in the current directory (the same
    trajectory convention as ``BENCH_*.json``)."""
    if path is None:
        stamp = payload["created_utc"].replace("-", "").replace(":", "")
        path = Path.cwd() / f"MEM_{stamp}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps_resources(payload), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _mib(value: Optional[int]) -> str:
    return "       -" if value is None else f"{value / 1048576.0:8.1f}"


def format_resources_table(payload: dict) -> str:
    """Human rendering of one resources payload, deterministic layout."""
    gc_doc = payload["gc"]
    lines = [
        f"// peak rss {_mib(payload['peak_rss_bytes']).strip()} MiB, "
        f"alloc peak {_mib(payload['alloc_peak_bytes']).strip()} MiB, "
        f"{gc_doc['collections']} gc collection(s) "
        f"({gc_doc['pause_seconds_total'] * 1000.0:.2f} ms paused) "
        f"over {payload['duration_seconds']:.3f}s"
    ]
    sections = payload["sections"]
    if sections:
        width = max([len("section")] + [len(s["name"]) for s in sections])
        lines.append(
            f"{'section':<{width}} {'count':>8} {'net alloc MiB':>13}"
        )
        for row in sections:
            lines.append(
                f"{row['name']:<{width}} {row['count']:8d} "
                f"{row['net_alloc_bytes'] / 1048576.0:13.3f}"
            )
    caches = payload["caches"]
    if caches:
        width = max([len("cache")] + [len(name) for name in caches])
        lines.append(f"{'cache':<{width}} {'entries':>8} {'bytes':>12}")
        for name in sorted(caches):
            tier = caches[name]
            lines.append(
                f"{name:<{width}} {tier['entries']:8d} {tier['bytes']:12d}"
            )
    return "\n".join(lines)
