"""Sections 6.2.2 / 6.2.3: eye tracker and robot controller fault
injection.

Paper: LEA — 100 injected executions (10 consecutive corrupted
instructions each), 8 with changed outputs, all back to correct values
by the next iteration (worst case 3, the history depth).  Sumo robot —
100 injected executions, 54 with changed outputs, all recovered on the
next iteration (stateless controller).
"""

from __future__ import annotations

from repro.apps import app_device_factory, load_app
from repro.runtime import RuntimeOptions, StabilizationExperiment

from .conftest import write_bench_result, write_result

ITERATIONS = 60


def run_app_trials(name: str, trials: int, burst: int, seed: int):
    app = load_app(name)
    experiment = StabilizationExperiment(
        app.info,
        app_device_factory(name, ITERATIONS),
        options=RuntimeOptions(ignore_errors=True),
    )
    return experiment, experiment.run_trials(trials, seed=seed, burst=burst)


def summarize(name, experiment, trials, worst_case: int):
    corrupted = [t for t in trials if t.corrupted_output]
    total = len(experiment.reference_groups())
    observable = [t for t in corrupted if not t.diverged]
    truncated = [
        t for t in corrupted
        if t.diverged and t.injection_iteration >= total - worst_case
    ]
    real_divergence = len(corrupted) - len(observable) - len(truncated)
    by_iterations: dict[int, int] = {}
    for trial in observable:
        by_iterations[trial.recovery_iterations] = (
            by_iterations.get(trial.recovery_iterations, 0) + 1
        )
    lines = [
        f"{name}: {len(trials)} injected executions, "
        f"{len(corrupted)} with changed outputs",
        f"  recovery iterations histogram: {dict(sorted(by_iterations.items()))}",
        f"  injections too late to observe recovery: {len(truncated)}",
        f"  unbounded divergences: {real_divergence}",
    ]
    assert real_divergence == 0, name
    assert all(t.recovery_iterations <= worst_case for t in observable), name
    return lines


def test_sec_6_2_2_eye_tracker(benchmark, scale):
    experiment, _ = run_app_trials("eye_tracker", 1, burst=10, seed=0)
    benchmark.pedantic(
        lambda: experiment.trial(seed=123, burst=10), rounds=3, iterations=1
    )
    experiment, trials = run_app_trials(
        "eye_tracker", scale["eye_trials"], burst=10, seed=1
    )
    # Worst case: the 3-deep position history, plus one iteration because
    # a 10-operation burst can straddle an iteration boundary and inject
    # fresh corruption into the following iteration as well.
    lines = ["Section 6.2.2 — LEA eye tracker (burst of 10 corrupted ops, "
             "paper: 100 trials, 8 changed, recovery by next iteration; "
             "history-depth worst case 3 + 1 for burst spanning a frame)"]
    lines += summarize("eye_tracker", experiment, trials, worst_case=4)
    write_result("sec_6_2_2_eye_tracker.txt", "\n".join(lines))
    write_bench_result(
        "sec_6_2_2_eye_tracker",
        kind="campaign-shard",
        benchmark=benchmark,
        counters={"trials": len(trials)},
    )


def test_sec_6_2_3_sumo_robot(benchmark, scale):
    experiment, _ = run_app_trials("sumo_robot", 1, burst=1, seed=0)
    benchmark.pedantic(
        lambda: experiment.trial(seed=321), rounds=3, iterations=1
    )
    experiment, trials = run_app_trials(
        "sumo_robot", scale["robot_trials"], burst=1, seed=2
    )
    # paper: resumed normal behavior in the next iteration
    lines = ["Section 6.2.3 — Sumo robot controller (paper: 100 trials, "
             "54 changed, recovery next iteration)"]
    lines += summarize("sumo_robot", experiment, trials, worst_case=1)
    write_result("sec_6_2_3_sumo_robot.txt", "\n".join(lines))
    write_bench_result(
        "sec_6_2_3_sumo_robot",
        kind="campaign-shard",
        benchmark=benchmark,
        counters={"trials": len(trials)},
    )
