"""Figure 6.3: number and type of annotations per benchmark.

Paper columns: Location (@LOC-family), Lattice (@LATTICE), Method
Default (@METHODDEFAULT), and lines of code.  Absolute counts differ —
our ports are smaller than the Java originals — but the shape holds:
location assignments dominate, lattice declarations are an order of
magnitude fewer, and the annotation burden is a small fraction of the
code size.
"""

from __future__ import annotations

from repro.apps import APP_NAMES, app_source, load_app
from repro.core.annotations import count_annotations
from repro.core.checker import SJavaChecker

from .conftest import write_bench_result, write_result


def count_loc(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


def collect_rows():
    rows = []
    for name in APP_NAMES:
        app = load_app(name)
        counts = count_annotations(app.program)
        rows.append(
            (
                name,
                counts.loc,
                counts.lattice,
                counts.method_default,
                count_loc(app_source(name)),
            )
        )
    return rows


def test_fig_6_3_annotation_counts(benchmark):
    rows = benchmark(collect_rows)
    lines = [
        "Figure 6.3 — Number and type of annotations",
        f"{'benchmark':16s} {'Location':>9s} {'Lattice':>8s} "
        f"{'MethodDefault':>14s} {'LOC':>6s}",
    ]
    for name, loc_count, lattice, default, sloc in rows:
        lines.append(
            f"{name:16s} {loc_count:9d} {lattice:8d} {default:14d} {sloc:6d}"
        )
    total_ann = sum(r[1] + r[2] + r[3] for r in rows)
    total_sloc = sum(r[4] for r in rows)
    lines.append(
        f"\nannotations per source line: {total_ann / total_sloc:.3f} "
        "(paper's qualitative claim: effort marginally exceeds writing "
        "Java types)"
    )
    write_result("fig_6_3_annotation_counts.txt", "\n".join(lines))
    write_bench_result(
        "fig_6_3_annotation_counts",
        kind="check",
        benchmark=benchmark,
        counters={"apps": len(rows), "annotations": total_ann},
    )

    # every annotated benchmark passes the full checker
    for name in APP_NAMES:
        report = SJavaChecker(load_app(name).info).run()
        assert report.self_stabilizing, name
    # shape: @LOC-family annotations dominate lattice declarations
    for name, loc_count, lattice, _, _ in rows:
        assert loc_count >= lattice, name
