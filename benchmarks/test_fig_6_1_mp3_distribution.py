"""Figure 6.1: distribution of the number of output samples required for
the MP3 decoder to return to normal behavior after an error injection.

Paper shape: all recoveries bounded (≤ 2,208 samples there); a fast mode
for injections into the final PCM transformation and a large peak where
the corrupted granule state (IMDCT overlap / synthesis window) carries
the error for extra granules.  Our analog reproduces the two modes: one
frame of samples for late-pipeline faults, up to three frames when the
overlap array or the 4-granule synthesis window is hit.
"""

from __future__ import annotations

from repro.apps import app_device_factory, load_app
from repro.runtime import RuntimeOptions, StabilizationExperiment
from repro.runtime.stabilization import recovery_histogram

from .conftest import write_bench_result, write_result

SAMPLES_PER_FRAME = 16


def run_distribution(trials: int, frames: int, seed: int = 0):
    app = load_app("mp3_decoder")
    experiment = StabilizationExperiment(
        app.info,
        app_device_factory("mp3_decoder", frames),
        options=RuntimeOptions(ignore_errors=True),
    )
    results = experiment.run_trials(trials, seed=seed)
    return experiment, results


def test_fig_6_1_recovery_distribution(benchmark, scale):
    experiment, _ = run_distribution(2, scale["mp3_frames"])  # warm caches
    benchmark.pedantic(
        lambda: experiment.trial(seed=999), rounds=3, iterations=1
    )

    _, trials = run_distribution(scale["mp3_trials"], scale["mp3_frames"])
    corrupted = [t for t in trials if t.corrupted_output]
    recovered = [t for t in corrupted if not t.diverged]
    histogram = recovery_histogram(recovered, bin_size=SAMPLES_PER_FRAME)

    total_frames = len(experiment.reference_groups())
    late_diverged = [
        t for t in corrupted
        if t.diverged and t.injection_iteration >= total_frames - 3
    ]
    max_samples = max((t.recovery_samples for t in recovered), default=0)

    lines = [
        "Figure 6.1 — MP3 decoder: recovery distribution after fault injection",
        f"trials: {len(trials)}   corrupted outputs: {len(corrupted)} "
        f"(paper: 1000 trials, 466 corrupted)",
        f"injections too close to end of stream to observe recovery: "
        f"{len(late_diverged)}",
        f"unbounded divergences: "
        f"{len([t for t in corrupted if t.diverged]) - len(late_diverged)} "
        "(paper: 0 — all recoveries bounded)",
        f"maximum recovery distance: {max_samples} samples "
        f"(= {max_samples // SAMPLES_PER_FRAME} frames; paper bound: 2,208 "
        "samples)",
        "",
        "samples-to-recovery histogram (bin = one frame of 16 samples):",
    ]
    for bucket, count in histogram.items():
        bar = "#" * max(1, count * 50 // max(1, len(recovered)))
        lines.append(f"  {bucket:4d}-{bucket + SAMPLES_PER_FRAME - 1:4d}: "
                     f"{count:4d} {bar}")
    write_result("fig_6_1_mp3_distribution.txt", "\n".join(lines))
    write_bench_result(
        "fig_6_1_mp3_distribution",
        kind="campaign-shard",
        benchmark=benchmark,
        counters={"trials": len(trials), "corrupted": len(corrupted)},
    )

    # shape assertions: every observable fault recovers, within 3 frames
    assert corrupted
    assert all(
        t.injection_iteration >= total_frames - 3
        for t in corrupted if t.diverged
    )
    assert all(t.recovery_samples <= 3 * SAMPLES_PER_FRAME for t in recovered)
