"""Figure 6.2: the MP3 decoder's output signal, normal execution vs
execution with an injected error.

The paper shows the injected run's signal deviating (oscillating) for a
bounded window and then rejoining the normal signal exactly.  This
benchmark produces both traces, locates the deviation window, and checks
the post-window samples are bit-identical.
"""

from __future__ import annotations

from repro.apps import app_device_factory, load_app
from repro.runtime import (
    ErrorInjector,
    Interpreter,
    RuntimeOptions,
    StabilizationExperiment,
)

from .conftest import write_bench_result, write_result

FRAMES = 24


def decode(injector=None):
    app = load_app("mp3_decoder")
    interp = Interpreter(
        app.info,
        app_device_factory("mp3_decoder", FRAMES)(),
        options=RuntimeOptions(ignore_errors=True),
        injector=injector,
    )
    interp.run()
    return interp.sink.values


def pick_visible_injection() -> int:
    """Find a target step whose corruption is visible mid-stream."""
    app = load_app("mp3_decoder")
    experiment = StabilizationExperiment(
        app.info,
        app_device_factory("mp3_decoder", FRAMES),
        options=RuntimeOptions(ignore_errors=True),
    )
    for seed in range(40):
        trial = experiment.trial(seed=seed)
        if (
            trial.corrupted_output
            and not trial.diverged
            and trial.injection_iteration < FRAMES - 6
        ):
            return trial.target_step
    raise AssertionError("no visible mid-stream injection found")


def test_fig_6_2_signal_trace(benchmark):
    normal = benchmark(decode)
    target = pick_visible_injection()
    injected = decode(ErrorInjector(target_step=target, seed=target + 1))

    assert len(normal) == len(injected)
    diffs = [i for i, (a, b) in enumerate(zip(normal, injected)) if a != b]
    assert diffs, "injection must visibly corrupt the signal"
    first, last = diffs[0], diffs[-1]

    # after the deviation window the signals are exactly identical
    assert injected[last + 1:] == normal[last + 1:]
    deviation = max(
        abs(a - b) for a, b in zip(normal[first:last + 1], injected[first:last + 1])
    )

    lines = [
        "Figure 6.2 — MP3 decoder output: normal vs error-injected execution",
        f"samples: {len(normal)} ({FRAMES} frames x 16 PCM samples)",
        f"deviation window: samples {first}..{last} "
        f"({last - first + 1} samples; paper trial: 1,630 samples)",
        f"peak deviation during window: {deviation:.3f}",
        "signals identical after the window: yes (exact state re-sync)",
        "",
        "sample  normal      injected",
    ]
    lo = max(0, first - 2)
    hi = min(len(normal), last + 3)
    for i in range(lo, hi):
        marker = "  <-- deviation" if first <= i <= last and normal[i] != injected[i] else ""
        lines.append(f"{i:6d}  {normal[i]:+9.4f}  {injected[i]:+9.4f}{marker}")
    write_result("fig_6_2_mp3_trace.txt", "\n".join(lines))
    write_bench_result(
        "fig_6_2_mp3_trace",
        kind="interpreter-step",
        benchmark=benchmark,
        counters={"samples": len(normal)},
    )
