"""Shared configuration for the evaluation benchmarks.

Each benchmark regenerates one table or figure of the paper's Chapter 6
evaluation.  The result tables are printed and written to
``benchmarks/results/``; the pytest-benchmark timings measure the cost
of the underlying operation (one checker run, one inference run, one
injection trial, ...).

Every ``.txt`` result now has a machine-readable twin: the suites route
their timings through :mod:`repro.obs.bench`, so next to each
``<name>.txt`` lands a schema-versioned ``<name>.json`` that
``repro bench --compare`` can diff and gate on (see
``docs/BENCHMARKS.md``).

Scale: the paper uses 1,000 MP3 trials and 100 eye/robot trials.  The
default here is reduced so a full benchmark run stays in the minutes;
set ``REPRO_FULL=1`` to run at paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs.bench import (
    bench_payload,
    dumps_bench,
    scenario_result_from_samples,
    validate_bench,
)

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: (mp3 trials, eye trials, robot trials)
MP3_TRIALS = 1000 if FULL else 120
EYE_TRIALS = 100 if FULL else 60
ROBOT_TRIALS = 100 if FULL else 60
MP3_FRAMES = 60 if FULL else 36

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text, encoding="utf-8")
    print("\n" + text)


def write_bench_result(
    stem: str,
    *,
    kind: str,
    benchmark=None,
    samples=None,
    counters: dict | None = None,
    scenario: str | None = None,
) -> None:
    """Write ``results/<stem>.json`` — the schema-versioned twin of
    ``results/<stem>.txt``, carrying the suite's timing samples.

    ``benchmark`` is the pytest-benchmark fixture after it ran (one
    sample per round); alternatively pass raw ``samples`` in seconds.
    """
    if samples is None:
        samples = list(benchmark.stats.stats.data)
    write_bench_results(stem, [
        scenario_result_from_samples(
            scenario or f"paper/{stem}", kind, samples, counters=counters
        )
    ])


def write_bench_results(stem: str, results: list[dict]) -> None:
    """Write several scenario results into one ``results/<stem>.json``
    (the backend comparison emits one scenario per execution engine)."""
    repetitions = max(len(r["samples_seconds"]) for r in results)
    payload = validate_bench(
        bench_payload(
            results, suite="paper-figures", warmup=0, repetitions=repetitions
        )
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{stem}.json").write_text(
        dumps_bench(payload), encoding="utf-8"
    )


@pytest.fixture(scope="session")
def scale() -> dict:
    return {
        "mp3_trials": MP3_TRIALS,
        "eye_trials": EYE_TRIALS,
        "robot_trials": ROBOT_TRIALS,
        "mp3_frames": MP3_FRAMES,
        "full": FULL,
    }
