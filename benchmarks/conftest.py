"""Shared configuration for the evaluation benchmarks.

Each benchmark regenerates one table or figure of the paper's Chapter 6
evaluation.  The result tables are printed and written to
``benchmarks/results/``; the pytest-benchmark timings measure the cost
of the underlying operation (one checker run, one inference run, one
injection trial, ...).

Scale: the paper uses 1,000 MP3 trials and 100 eye/robot trials.  The
default here is reduced so a full benchmark run stays in the minutes;
set ``REPRO_FULL=1`` to run at paper scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: (mp3 trials, eye trials, robot trials)
MP3_TRIALS = 1000 if FULL else 120
EYE_TRIALS = 100 if FULL else 60
ROBOT_TRIALS = 100 if FULL else 60
MP3_FRAMES = 60 if FULL else 36

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text, encoding="utf-8")
    print("\n" + text)


@pytest.fixture(scope="session")
def scale() -> dict:
    return {
        "mp3_trials": MP3_TRIALS,
        "eye_trials": EYE_TRIALS,
        "robot_trials": ROBOT_TRIALS,
        "mp3_frames": MP3_FRAMES,
        "full": FULL,
    }
