"""End-to-end checker cost over the benchmark suite (the paper's "Time"
column context): how long the complete SJava pipeline — parse, resolve,
conventional typing, flow-down, linear types, inheritance, termination,
eviction, shared locations — takes per application."""

from __future__ import annotations

from repro.apps import APP_NAMES, app_source
from repro.core.checker import check_program

from .conftest import write_bench_result, write_result


def check_all() -> dict[str, bool]:
    return {
        name: check_program(app_source(name)).self_stabilizing
        for name in APP_NAMES
    }


def test_checker_end_to_end(benchmark):
    results = benchmark(check_all)
    lines = ["Full SJava checker over all benchmarks:"]
    for name, ok in results.items():
        lines.append(f"  {name:16s} self-stabilizing: {ok}")
    write_result("checker_end_to_end.txt", "\n".join(lines))
    write_bench_result(
        "checker_end_to_end",
        kind="check",
        benchmark=benchmark,
        counters={"apps": len(results)},
    )
    assert all(results.values())


def test_checker_single_app_mp3(benchmark):
    source = app_source("mp3_decoder")
    report = benchmark(check_program, source)
    assert report.self_stabilizing
