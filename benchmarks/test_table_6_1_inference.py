"""Table 6.1: the inference evaluation.

For each benchmark and each strategy (manual annotations, the naive
maximally-precise inference of Section 5.2, and SInfer's simplified
inference of Section 5.3) the table reports the number of location types
and the number of top-to-bottom lattice paths, split into the paper's
simple (≤5 locations) and complex (>5) lattice categories, plus the
inference time and lines of code.

Expected shape (paper): naive ≥ SInfer in both locations and paths, with
the gap largest on the MP3 decoder (the paper's SynthesisFilter blowup,
Fig. 5.11 vs Fig. 6.4); SInfer is slower than naive; and — the
correctness criterion — every inferred annotation set passes the full
SJava checker.
"""

from __future__ import annotations

from repro.apps import APP_NAMES, app_source, load_app
from repro.core.checker import SJavaChecker
from repro.core.environment import LocationWorld
from repro.core.errors import DiagnosticSink
from repro.infer import infer_annotations, lattice_metrics
from repro.infer.metrics import summarize_metrics

from .conftest import write_bench_result, write_result


def manual_metrics(name: str):
    """Metrics of the hand-written lattices (the paper's 'manual' rows)."""
    app = load_app(name)
    world = LocationWorld(app.info, DiagnosticSink())
    per = []
    for class_name, lattice in sorted(world.field_lattices.items()):
        per.append(lattice_metrics(f"class {class_name}", lattice))
    for key, env in sorted(world.method_envs.items()):
        per.append(lattice_metrics(f"method {key[0]}.{key[1]}", env.lattice))
    return summarize_metrics(per), None


def inferred_metrics(name: str, mode: str):
    app = load_app(name, annotated=False)
    result = infer_annotations(app.info, mode=mode)
    assert result.verified, (
        f"{name}/{mode} inferred annotations failed the checker:\n"
        + result.check_report.format()
    )
    return result.summary, result.elapsed_seconds


def count_loc(source: str) -> int:
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("//")
    )


def test_table_6_1_inference_evaluation(benchmark):
    # the timed unit: one SInfer run on the most complex benchmark
    benchmark(
        lambda: infer_annotations(
            load_app("mp3_decoder", annotated=False).info,
            mode="sinfer",
            verify=False,
        )
    )

    lines = [
        "Table 6.1 — Inference evaluation (manual vs naive vs SInfer)",
        f"{'benchmark':14s} {'strategy':8s} "
        f"{'loc<=5':>7s} {'path<=5':>8s} {'loc>5':>7s} {'path>5':>8s} "
        f"{'time(s)':>8s} {'LOC':>5s}",
    ]
    shape_rows = {}
    for name in APP_NAMES:
        sloc = count_loc(app_source(name))
        strategies = [
            ("manual", *manual_metrics(name)),
            ("naive", *inferred_metrics(name, "naive")),
            ("sinfer", *inferred_metrics(name, "sinfer")),
        ]
        for label, summary, elapsed in strategies:
            time_text = f"{elapsed:8.3f}" if elapsed is not None else "     n/a"
            lines.append(
                f"{name:14s} {label:8s} "
                f"{summary.simple_locations:7d} {summary.simple_paths:8d} "
                f"{summary.complex_locations:7d} {summary.complex_paths:8d} "
                f"{time_text} {sloc:5d}"
            )
            shape_rows[(name, label)] = summary
    lines.append(
        "\ncorrectness: all naive and SInfer annotation sets verified by "
        "the full SJava checker (type system + eviction + termination + "
        "linear types)"
    )
    write_result("table_6_1_inference.txt", "\n".join(lines))
    write_bench_result(
        "table_6_1_inference",
        kind="infer",
        benchmark=benchmark,
        scenario="paper/table_6_1_sinfer_mp3",
        counters={"apps": len(APP_NAMES)},
    )

    # shape assertions (who wins): SInfer never more complex than naive
    for name in APP_NAMES:
        naive = shape_rows[(name, "naive")]
        sinfer = shape_rows[(name, "sinfer")]
        assert sinfer.total_locations <= naive.total_locations, name
        assert sinfer.total_paths <= naive.total_paths, name
    # and the gap is visible on the decoder pipeline (the paper's
    # SynthesisFilter case)
    mp3_naive = shape_rows[("mp3_decoder", "naive")]
    mp3_sinfer = shape_rows[("mp3_decoder", "sinfer")]
    assert mp3_sinfer.total_paths < mp3_naive.total_paths
