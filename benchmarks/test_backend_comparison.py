"""Execution backend comparison: tree-walking interpreter vs the
closure-compiling runner (the code-generation strategy of Section 4.4).

Both are observationally identical (differential tests in
``tests/runtime/test_compiler.py``); this benchmark quantifies the
compiled backend's speedup on the MP3 decoder, the heaviest workload.
"""

from __future__ import annotations

import time

from repro.apps import app_device_factory, load_app
from repro.runtime import Interpreter, RuntimeOptions
from repro.runtime.compiler import CompiledRunner

from repro.obs.bench import scenario_result_from_samples

from .conftest import write_bench_results, write_result

FRAMES = 40


def decode_with(backend) -> int:
    app = load_app("mp3_decoder")
    engine = backend(
        app.info,
        app_device_factory("mp3_decoder", FRAMES)(),
        options=RuntimeOptions(ignore_errors=True),
    )
    return len(engine.run())


def test_backend_interpreter(benchmark):
    samples = benchmark(decode_with, Interpreter)
    assert samples == FRAMES * 16


def test_backend_compiled(benchmark):
    samples = benchmark(decode_with, CompiledRunner)
    assert samples == FRAMES * 16


def test_backend_speedup_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def sample(backend, rounds=3) -> list[float]:
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            decode_with(backend)
            times.append(time.perf_counter() - start)
        return times

    interp_times = sample(Interpreter)
    compiled_times = sample(CompiledRunner)
    interp, compiled = min(interp_times), min(compiled_times)
    lines = [
        "Execution backends on the MP3 decoder "
        f"({FRAMES} frames, best of 3):",
        f"  tree-walking interpreter: {interp * 1000:8.1f} ms",
        f"  closure-compiled runner:  {compiled * 1000:8.1f} ms",
        f"  speedup: {interp / compiled:.2f}x",
    ]
    write_result("backend_comparison.txt", "\n".join(lines))
    write_bench_results("backend_comparison", [
        scenario_result_from_samples(
            "paper/backend_interpreter", "interpreter-step", interp_times,
            counters={"frames": FRAMES},
        ),
        scenario_result_from_samples(
            "paper/backend_compiled", "interpreter-step", compiled_times,
            counters={"frames": FRAMES},
        ),
    ])
    assert compiled <= interp * 1.2
